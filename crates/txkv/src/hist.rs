// lint:hot-path
//! Fixed-bucket lock-free latency histogram — the txkv record path.
//!
//! Layout: the first `LINEAR_BUCKETS` (32) buckets are 1 µs wide; above
//! that, buckets are log₂-major with `SUB_BUCKETS` (32) linear sub-buckets
//! per octave (an HDR-style 5-bit mantissa), so relative quantization
//! error stays ≤ 1/32 ≈ 3% across the whole range. The top bucket
//! absorbs everything past ~19 hours, which is not a latency but a bug.
//!
//! [`record_us`](LatencyHistogram::record_us) is the hot path: one pure
//! index computation plus one relaxed `fetch_add` — no allocation, no
//! locks, no clock reads (callers time the operation and pass the
//! elapsed microseconds in). The workspace `zero_alloc` counting-
//! allocator test pins the no-allocation property; this file carries the
//! `lint:hot-path` tag so `xtask lint` rejects allocating or
//! clock-reading constructs at the source level too.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave above the linear range (5-bit mantissa).
const SUB_BUCKETS: u64 = 32;
/// Values below this many µs get their own 1 µs bucket.
const LINEAR_BUCKETS: u64 = SUB_BUCKETS;
/// Total bucket count: 32 octaves of 32 sub-buckets. The last bucket's
/// floor is `(63) << 30` µs ≈ 18.8 hours.
pub const BUCKETS: usize = (SUB_BUCKETS * SUB_BUCKETS) as usize;

/// Bucket index of a microsecond value (monotone in `us`).
#[must_use]
fn bucket_of(us: u64) -> usize {
    if us < LINEAR_BUCKETS {
        return us as usize;
    }
    // Position of the most significant set bit (≥ 5 here).
    let msb = 63 - u64::from(us.leading_zeros());
    let major = msb - 4;
    let minor = (us >> (msb - 5)) & (SUB_BUCKETS - 1);
    let idx = (major * SUB_BUCKETS + minor) as usize;
    idx.min(BUCKETS - 1)
}

/// Lower edge of bucket `b`, in µs — the value percentiles report.
#[must_use]
fn bucket_floor(b: usize) -> u64 {
    let b = b as u64;
    if b < LINEAR_BUCKETS {
        return b;
    }
    let major = b / SUB_BUCKETS;
    let minor = b % SUB_BUCKETS;
    (SUB_BUCKETS + minor) << (major - 1)
}

/// Latency percentiles drained from a histogram, in microseconds.
/// Percentile values are bucket lower edges (≤ 3% quantization).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Operations recorded.
    pub count: u64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: f64,
}

/// A fixed-size, lock-free histogram of per-operation latencies.
///
/// All buckets are allocated at construction; recording touches exactly
/// one `AtomicU64`. Any number of threads may record concurrently while
/// one reader drains.
pub struct LatencyHistogram {
    buckets: std::boxed::Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (the only allocation this type ever performs).
    #[must_use]
    pub fn new() -> Self {
        let buckets: std::vec::Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// Record one operation that took `us` microseconds. Lock-free and
    /// allocation-free — safe on the hottest path.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total operations recorded (racy snapshot under concurrent
    /// recording, exact when quiescent).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Drain the histogram: atomically take every bucket's count (the
    /// histogram reads as empty afterwards) and reduce the taken counts
    /// to percentiles. One drain per measurement window gives
    /// per-window percentiles from a shared instance.
    pub fn drain(&self) -> LatencySummary {
        let mut counts = [0u64; BUCKETS];
        let mut total = 0u64;
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.swap(0, Ordering::Relaxed);
            total += *slot;
        }
        if total == 0 {
            return LatencySummary::default();
        }
        let pct = |q: f64| {
            // 1-based rank of the q-quantile observation.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (b, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_floor(b) as f64;
                }
            }
            bucket_floor(BUCKETS - 1) as f64
        };
        LatencySummary {
            count: total,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_contiguous() {
        let mut last = 0usize;
        for us in 0..100_000u64 {
            let b = bucket_of(us);
            assert!(b >= last, "bucket_of must be monotone at {us}");
            assert!(b - last <= 1, "no gaps at {us}");
            last = b;
        }
        // Every bucket's floor maps back into that bucket.
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(b)), b, "floor of bucket {b}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for us in [100u64, 999, 5_000, 123_456, 10_000_000] {
            let floor = bucket_floor(bucket_of(us));
            assert!(floor <= us);
            assert!(
                (us - floor) as f64 / us as f64 <= 1.0 / 32.0 + 1e-9,
                "error too large at {us}: floor {floor}"
            );
        }
    }

    #[test]
    fn huge_values_clamp_to_the_top_bucket() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        let s = h.drain();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, bucket_floor(BUCKETS - 1) as f64);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 1000 ops at 10 µs, 10 at 1000 µs: p50 = 10, p99 = 10 (rank 1000
        // of 1010 lands in the bulk), p999 = 1000-ish.
        for _ in 0..1000 {
            h.record_us(10);
        }
        for _ in 0..10 {
            h.record_us(1000);
        }
        let s = h.drain();
        assert_eq!(s.count, 1010);
        assert_eq!(s.p50_us, 10.0);
        assert_eq!(s.p99_us, 10.0);
        let p999_floor = bucket_floor(bucket_of(1000)) as f64;
        assert_eq!(s.p999_us, p999_floor);
        assert!(s.p999_us >= 960.0, "{}", s.p999_us);
    }

    #[test]
    fn drain_resets_the_histogram() {
        let h = LatencyHistogram::new();
        h.record_us(5);
        assert_eq!(h.drain().count, 1);
        assert_eq!(h.drain(), LatencySummary::default());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_us(t * 1000 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.drain().count, 40_000);
    }
}

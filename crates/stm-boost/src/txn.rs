//! Boosted transactions and their composition.
//!
//! A boosted transaction applies operations *eagerly* to the base set,
//! after acquiring the key's abstract lock, and logs an inverse
//! (*compensating*) operation for rollback: `add(k)` is compensated by
//! `remove(k)` and vice versa. Locks are two-phase: released only when
//! the top-level transaction commits or aborts.
//!
//! Composition (`child`) follows the paper's analysis:
//!
//! * **outheritance on** (default): at child commit the child's abstract
//!   locks are passed up to the parent ([`AbstractLocks::pass_up`]) and
//!   its compensations stay in the parent's log — the parent can still
//!   undo everything, and no foreign transaction can touch the child's
//!   keys before the parent commits. Compositions are atomic.
//! * **outheritance off** (open-nesting style, [`BoostedSet::open_nested`]):
//!   at child commit the child's locks are *released* and its
//!   compensations *discarded* (the child is durable on its own). A later
//!   parent abort cannot undo the child, and foreign transactions can
//!   interleave on the child's keys — the hazards the paper attributes to
//!   Moss's open nesting ("no guarantees of atomicity are given").

use crate::base::BaseSet;
use crate::locks::AbstractLocks;
use core::sync::atomic::{AtomicU64, Ordering};

/// Why a boosted transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoostError {
    /// An abstract lock was held by another transaction.
    Conflict {
        /// The contended key.
        key: i64,
    },
    /// Explicit user abort.
    Aborted,
}

/// A compensating operation (LIFO undo log entry).
#[derive(Debug, Clone, Copy)]
enum Compensation {
    /// Undo a successful `add(k)`.
    RemoveBack(i64),
    /// Undo a successful `remove(k)`.
    AddBack(i64),
}

/// Saved parent state across a child (one nesting frame).
#[derive(Debug)]
struct Frame {
    held_mark: usize,
    comp_mark: usize,
    parent_ticket: u64,
}

/// A boosted concurrent set: base structure + abstract locks + the
/// transaction runner.
#[derive(Debug)]
pub struct BoostedSet {
    base: BaseSet,
    locks: AbstractLocks,
    outheritance: bool,
    tickets: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl Default for BoostedSet {
    fn default() -> Self {
        Self::new()
    }
}

impl BoostedSet {
    /// A boosted set whose compositions outherit (atomic composition).
    #[must_use]
    pub fn new() -> Self {
        Self {
            base: BaseSet::new(),
            locks: AbstractLocks::new(),
            outheritance: true,
            tickets: AtomicU64::new(1),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// Open-nesting mode: children release their abstract locks and drop
    /// their compensations at child commit (composition hazards included,
    /// deliberately — for demonstration and tests).
    #[must_use]
    pub fn open_nested() -> Self {
        let mut s = Self::new();
        s.outheritance = false;
        s
    }

    /// Direct (non-transactional) access to the base set, for setup and
    /// assertions in quiescent states.
    #[must_use]
    pub fn base(&self) -> &BaseSet {
        &self.base
    }

    /// The abstract lock table (diagnostics/tests).
    #[must_use]
    pub fn locks(&self) -> &AbstractLocks {
        &self.locks
    }

    /// (commits, aborts) so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    fn fresh_ticket(&self) -> u64 {
        self.tickets.fetch_add(1, Ordering::Relaxed)
    }

    /// Run `f` as a boosted transaction, retrying on abstract-lock
    /// conflicts with brief backoff.
    pub fn run<R>(&self, mut f: impl FnMut(&mut BoostTxn<'_>) -> Result<R, BoostError>) -> R {
        let mut spins = 0u32;
        loop {
            let mut txn = BoostTxn {
                set: self,
                ticket: self.fresh_ticket(),
                held: Vec::new(),
                compensations: Vec::new(),
                frames: Vec::new(),
            };
            match f(&mut txn) {
                Ok(r) => {
                    txn.commit_top();
                    self.commits.fetch_add(1, Ordering::Relaxed);
                    return r;
                }
                Err(_) => {
                    txn.rollback_all();
                    self.aborts.fetch_add(1, Ordering::Relaxed);
                    spins = (spins + 1).min(16);
                    for _ in 0..(1u32 << spins) {
                        core::hint::spin_loop();
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One boosted transaction attempt (with live nesting frames during
/// composition).
#[derive(Debug)]
pub struct BoostTxn<'s> {
    set: &'s BoostedSet,
    /// Current (sub)transaction's lock-owner ticket.
    ticket: u64,
    /// Keys locked, in acquisition order, tagged with the owning ticket.
    held: Vec<(i64, u64)>,
    compensations: Vec<Compensation>,
    frames: Vec<Frame>,
}

impl BoostTxn<'_> {
    fn acquire(&mut self, key: i64) -> Result<(), BoostError> {
        // Reentrant across the whole attempt: if any level of this
        // transaction already holds the key, it stays held.
        if self.held.iter().any(|&(k, _)| k == key) {
            return Ok(());
        }
        if self.set.locks.try_acquire(key, self.ticket) {
            self.held.push((key, self.ticket));
            Ok(())
        } else {
            Err(BoostError::Conflict { key })
        }
    }

    /// Boosted insert; `true` if the key was absent.
    pub fn add(&mut self, key: i64) -> Result<bool, BoostError> {
        self.acquire(key)?;
        let added = self.set.base.add(key);
        if added {
            self.compensations.push(Compensation::RemoveBack(key));
        }
        Ok(added)
    }

    /// Boosted remove; `true` if the key was present.
    pub fn remove(&mut self, key: i64) -> Result<bool, BoostError> {
        self.acquire(key)?;
        let removed = self.set.base.remove(key);
        if removed {
            self.compensations.push(Compensation::AddBack(key));
        }
        Ok(removed)
    }

    /// Boosted membership test.
    pub fn contains(&mut self, key: i64) -> Result<bool, BoostError> {
        self.acquire(key)?;
        Ok(self.set.base.contains(key))
    }

    /// Explicit abort of the whole attempt.
    pub fn retry<T>(&mut self) -> Result<T, BoostError> {
        Err(BoostError::Aborted)
    }

    /// Run `f` as a child transaction (the composition operator).
    pub fn child<R>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<R, BoostError>,
    ) -> Result<R, BoostError> {
        let frame = Frame {
            held_mark: self.held.len(),
            comp_mark: self.compensations.len(),
            parent_ticket: self.ticket,
        };
        let child_ticket = self.set.fresh_ticket();
        self.frames.push(frame);
        self.ticket = child_ticket;

        let result = f(self);
        let frame = self.frames.pop().expect("frame pushed above");
        match result {
            Ok(value) => {
                if self.set.outheritance {
                    // outherit(): the child's abstract locks pass to the
                    // parent; its compensations remain in the shared log so
                    // a parent abort still undoes the child.
                    for &(key, owner) in &self.held[frame.held_mark..] {
                        debug_assert_eq!(owner, child_ticket);
                        self.set.locks.pass_up(key, owner, frame.parent_ticket);
                    }
                    for entry in &mut self.held[frame.held_mark..] {
                        entry.1 = frame.parent_ticket;
                    }
                } else {
                    // Open nesting: the child is durable on its own — its
                    // locks release NOW and its compensations are dropped
                    // (the parent can no longer undo it).
                    for &(key, owner) in &self.held[frame.held_mark..] {
                        self.set.locks.release(key, owner);
                    }
                    self.held.truncate(frame.held_mark);
                    self.compensations.truncate(frame.comp_mark);
                }
                self.ticket = frame.parent_ticket;
                Ok(value)
            }
            Err(e) => {
                // Child abort: undo the child's effects and release its
                // locks, then propagate (the paper's model aborts the whole
                // composition; a finer policy could retry just the child).
                while self.compensations.len() > frame.comp_mark {
                    self.apply_compensation();
                }
                for &(key, owner) in &self.held[frame.held_mark..] {
                    self.set.locks.release(key, owner);
                }
                self.held.truncate(frame.held_mark);
                self.ticket = frame.parent_ticket;
                Err(e)
            }
        }
    }

    fn apply_compensation(&mut self) {
        match self.compensations.pop() {
            Some(Compensation::RemoveBack(k)) => {
                self.set.base.remove(k);
            }
            Some(Compensation::AddBack(k)) => {
                self.set.base.add(k);
            }
            None => {}
        }
    }

    fn commit_top(&mut self) {
        debug_assert!(self.frames.is_empty());
        for &(key, owner) in &self.held {
            self.set.locks.release(key, owner);
        }
        self.held.clear();
        self.compensations.clear();
    }

    fn rollback_all(&mut self) {
        while !self.compensations.is_empty() {
            self.apply_compensation();
        }
        for &(key, owner) in &self.held {
            self.set.locks.release(key, owner);
        }
        self.held.clear();
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_boosted_ops() {
        let s = BoostedSet::new();
        let added = s.run(|tx| tx.add(5));
        assert!(added);
        assert!(s.run(|tx| tx.contains(5)));
        assert!(!s.run(|tx| tx.add(5)));
        assert!(s.run(|tx| tx.remove(5)));
        assert_eq!(s.locks().held(), 0, "two-phase locks all released");
        assert!(s.base().is_empty());
    }

    #[test]
    fn abort_compensates_in_reverse() {
        let s = BoostedSet::new();
        s.base().add(1);
        let mut once = true;
        s.run(|tx| {
            if once {
                once = false;
                tx.add(2)?; // will be compensated by remove(2)
                tx.remove(1)?; // will be compensated by add(1)
                return tx.retry::<()>(); // explicit abort
            }
            Ok(())
        });
        assert!(s.base().contains(1), "remove compensated");
        assert!(!s.base().contains(2), "add compensated");
        assert_eq!(s.stats().1, 1, "one abort recorded");
        assert_eq!(s.locks().held(), 0);
    }

    #[test]
    fn outherited_children_roll_back_with_parent() {
        // The composition property: a parent abort undoes a COMMITTED
        // child, because the child's compensations outherited.
        let s = BoostedSet::new();
        let mut once = true;
        s.run(|tx| {
            let inserted = tx.child(|t| t.add(7))?; // child commits
            assert!(inserted);
            if once {
                once = false;
                return tx.retry::<()>(); // parent aborts afterwards
            }
            Ok(())
        });
        // First attempt aborted after the child committed; retry ran the
        // child again and committed. Net effect: exactly one insert.
        assert!(s.base().contains(7));
        // Crucially, during the aborted attempt the child's add was undone
        // (otherwise the retry's add(7) would have returned false and the
        // assert! inside would have fired).
    }

    #[test]
    fn open_nested_children_survive_parent_abort() {
        // The hazard: without outheritance the child is durable, so the
        // aborted parent leaves it behind — composition is not atomic.
        let s = BoostedSet::open_nested();
        let mut once = true;
        s.run(|tx| {
            let inserted = tx.child(|t| t.add(7))?;
            if once {
                once = false;
                assert!(inserted, "first attempt inserts");
                return tx.retry::<()>();
            }
            assert!(
                !inserted,
                "retry finds 7 already present: the aborted parent's child leaked"
            );
            Ok(())
        });
        assert!(s.base().contains(7));
    }

    #[test]
    fn outherited_locks_block_foreign_access_until_parent_commit() {
        let s = Arc::new(BoostedSet::new());
        // Parent composes a child that locks key 9, then (before parent
        // commit) a foreign transaction tries key 9 and must conflict.
        s.run(|tx| {
            tx.child(|t| t.add(9))?;
            // Foreign probe from another thread while we're still open:
            let s2 = Arc::clone(&s);
            let blocked = std::thread::spawn(move || {
                let mut blocked_flag = false;
                // Single manual attempt (not the retry loop): acquire fails.
                let t = s2.fresh_ticket();
                if !s2.locks.try_acquire(9, t) {
                    blocked_flag = true;
                }
                blocked_flag
            })
            .join()
            .unwrap();
            assert!(blocked, "outherited abstract lock must still be held");
            Ok(())
        });
        assert_eq!(s.locks().held(), 0);
    }

    #[test]
    fn open_nesting_releases_locks_early() {
        let s = Arc::new(BoostedSet::open_nested());
        s.run(|tx| {
            tx.child(|t| t.add(9))?;
            let s2 = Arc::clone(&s);
            let free = std::thread::spawn(move || {
                let t = s2.fresh_ticket();
                let ok = s2.locks.try_acquire(9, t);
                if ok {
                    s2.locks.release(9, t);
                }
                ok
            })
            .join()
            .unwrap();
            assert!(
                free,
                "open nesting released the child's lock at child commit"
            );
            Ok(())
        });
    }

    #[test]
    fn concurrent_boosted_updates_conserve_elements() {
        let s = Arc::new(BoostedSet::new());
        for k in 0..8 {
            s.base().add(k);
        }
        let mut handles = Vec::new();
        for t in 0..stm_core::parallel::worker_threads(4) as i64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                for i in 0..1500 {
                    let k = (i * 5 + t) % 8;
                    if i % 2 == 0 {
                        if s.run(|tx| tx.add(k)) {
                            net += 1;
                        }
                    } else if s.run(|tx| tx.remove(k)) {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(s.base().len() as i64, 8 + net);
        assert_eq!(s.locks().held(), 0);
    }

    #[test]
    fn composed_move_is_atomic_under_concurrency() {
        // move(k -> k') composed from remove+add children; concurrent
        // observers using a composed contains-pair never see both or
        // neither.
        use std::sync::atomic::{AtomicBool, Ordering};
        let s = Arc::new(BoostedSet::new());
        s.base().add(1);
        let stop = Arc::new(AtomicBool::new(false));
        let mover = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut at1 = true;
                while !stop.load(Ordering::Relaxed) {
                    let (from, to) = if at1 { (1, 2) } else { (2, 1) };
                    s.run(|tx| {
                        let moved = tx.child(|t| t.remove(from))?;
                        if moved {
                            tx.child(|t| t.add(to))?;
                        }
                        Ok(())
                    });
                    at1 = !at1;
                }
            })
        };
        for _ in 0..500 {
            let (a, b) = s.run(|tx| {
                let a = tx.child(|t| t.contains(1))?;
                let b = tx.child(|t| t.contains(2))?;
                Ok((a, b))
            });
            assert!(a ^ b, "the element must be in exactly one place");
        }
        stop.store(true, Ordering::Relaxed);
        mover.join().unwrap();
    }
}

//! The linearizable base structure transactional boosting builds on.
//!
//! Boosting treats the underlying data structure as a black box from "a
//! separate thread-safe library" — conflict detection happens entirely in
//! the abstract-lock layer, so the base only needs linearizable single-key
//! operations. A lock-striped hash of `BTreeSet` shards is plenty.

use parking_lot::Mutex;
use std::collections::BTreeSet;

/// Number of shards (power of two).
const SHARDS: usize = 16;

/// A linearizable concurrent set of `i64` keys.
#[derive(Debug)]
pub struct BaseSet {
    shards: Vec<Mutex<BTreeSet<i64>>>,
}

impl Default for BaseSet {
    fn default() -> Self {
        Self::new()
    }
}

impl BaseSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(BTreeSet::new())).collect(),
        }
    }

    fn shard(&self, key: i64) -> &Mutex<BTreeSet<i64>> {
        &self.shards[(key.rem_euclid(SHARDS as i64)) as usize]
    }

    /// Insert; `true` if the key was absent.
    pub fn add(&self, key: i64) -> bool {
        self.shard(key).lock().insert(key)
    }

    /// Remove; `true` if the key was present.
    pub fn remove(&self, key: i64) -> bool {
        self.shard(key).lock().remove(&key)
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: i64) -> bool {
        self.shard(key).lock().contains(&key)
    }

    /// Total size (locks shards one at a time; linearizable only in
    /// quiescence — boosted transactions protect it with abstract locks
    /// instead).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_semantics() {
        let s = BaseSet::new();
        assert!(s.add(5));
        assert!(!s.add(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn negative_keys() {
        let s = BaseSet::new();
        assert!(s.add(-17));
        assert!(s.contains(-17));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_disjoint_adds() {
        let s = Arc::new(BaseSet::new());
        let threads = stm_core::parallel::worker_threads(4) as i64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for k in 0..200 {
                    assert!(s.add(t * 1000 + k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), threads as usize * 200);
    }
}

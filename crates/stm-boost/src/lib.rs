//! # stm-boost — transactional boosting with outheritance
//!
//! The paper argues (Section VIII) that **outheritance is a general
//! principle**, not something tied to the elastic model: any relaxed
//! synchronization scheme composes iff committing children pass their
//! conflict information to their parent. Its first example is
//! *transactional boosting* (Herlihy & Koskinen, PPoPP 2008), where
//! transactions operate on a linearizable black-box data structure,
//! detect conflicts with **abstract locks** (one per key, since set
//! operations on different keys commute), and roll back with
//! **compensating operations**:
//!
//! > "Although not described in the paper, passing abstract locks from
//! > the child to the parent transaction would make transactional
//! > boosting satisfy outheritance and therefore provide composition."
//!
//! This crate implements exactly that sentence:
//!
//! * [`BaseSet`] — a linearizable concurrent integer set (lock-striped),
//!   standing in for the "separate thread-safe library";
//! * [`AbstractLocks`] — per-key two-phase abstract locks;
//! * [`BoostedSet`] / [`BoostTxn`] — boosted transactions whose updates
//!   apply eagerly to the base set, log compensations (`add(k)` ↦
//!   `remove(k)` and vice versa), and hold abstract locks until commit;
//! * composition with a switch: with **outheritance on** a committing
//!   child passes its locks *and compensations* to the parent (atomic
//!   composition — the parent can still undo the child); with
//!   **outheritance off** the child releases its locks at child commit,
//!   reproducing the open-nesting-style composition hazard the paper
//!   describes for Moss's model;
//! * [`BoostStm`] — the same discipline at word granularity, implementing
//!   the full [`Stm`](stm_core::Stm) SPI so boosting joins the
//!   [`BackendRegistry`](stm_core::BackendRegistry) (name `"boost"`) and
//!   runs every generic workload next to the four native STMs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod locks;
pub mod txn;
pub mod word;

pub use base::BaseSet;
pub use locks::AbstractLocks;
pub use txn::{BoostError, BoostTxn, BoostedSet};
pub use word::{register_backends, BoostStm, BoostWordTxn};

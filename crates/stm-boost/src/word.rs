//! A word-granular boosted STM — the registry-facing face of this crate.
//!
//! [`BoostedSet`](crate::BoostedSet) boosts a concrete data structure; this
//! module applies the same discipline to plain transactional words so the
//! boosting model can join the `BackendRegistry` and run every generic
//! workload next to TL2/LSA/SwissTM/OE-STM:
//!
//! * each [`TVarCore`] is treated as a black-box cell whose protection
//!   element is an [`AbstractLocks`] entry keyed by the location identity;
//! * locks are acquired *eagerly* at first touch, for reads and writes
//!   alike (strict two-phase locking — the degenerate commutativity
//!   specification in which no two operations on the same word commute);
//! * writes apply in place immediately, logging the previous word as the
//!   compensating operation; an abort replays the log backwards;
//! * a conflicting acquisition aborts the requester on the spot, so lock
//!   waits never form a cycle and the scheme is deadlock-free by
//!   construction;
//! * children nest flat: their locks and compensations stay with the
//!   attempt, which trivially satisfies outheritance (the paper's
//!   Section VIII reading of boosting — conflict information is passed to
//!   the parent rather than dropped at child commit).
//!
//! Because every access holds the abstract lock before touching the word,
//! transactional loads and stores can use the unsynchronized primitives —
//! mutual exclusion comes entirely from the abstract layer, exactly as in
//! boosting, where the base structure's own synchronization is opaque.

use crate::locks::AbstractLocks;
use stm_core::clock::GlobalClock;
use stm_core::cm::{ConflictCtx, ContentionManager};
use stm_core::dynstm::{BackendRegistry, BackendSpec};
use stm_core::hook::WriteRecord;
use stm_core::stm::{retry_loop_waiting, AttemptFail};
use stm_core::ticket::next_ticket;
use stm_core::trace::{AttemptTracer, TraceOp};
use stm_core::tvar::TVarCore;
use stm_core::wait;
use stm_core::{
    Abort, AbortReason, RunError, StatsSnapshot, Stm, StmConfig, StmStats, Transaction, TxKind,
};

/// Register this crate's backend under the name `"boost"`.
pub fn register_backends(registry: &mut BackendRegistry) {
    fn make(config: StmConfig) -> Box<dyn stm_core::dynstm::DynStm> {
        Box::new(BoostStm::with_config(config))
    }
    registry.register(BackendSpec::new(
        "boost",
        "Boosting (Herlihy/Koskinen): abstract 2PL, in-place writes, undo",
        make,
    ));
}

/// The abstract-lock key of a location: its stable identity, reinterpreted
/// into the signed key space [`AbstractLocks`] uses for set elements.
fn lock_key(core: &TVarCore) -> i64 {
    i64::from_ne_bytes((core.id() as u64).to_ne_bytes())
}

/// A word-based boosted STM instance (registry name `"boost"`).
#[derive(Debug, Default)]
pub struct BoostStm {
    clock: GlobalClock,
    stats: StmStats,
    config: StmConfig,
    locks: AbstractLocks,
}

impl BoostStm {
    /// Fresh instance with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh instance with `config`.
    #[must_use]
    pub fn with_config(config: StmConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The instance's abstract-lock table (diagnostics/tests).
    #[must_use]
    pub fn locks(&self) -> &AbstractLocks {
        &self.locks
    }
}

/// One attempt of a boosted word transaction.
pub struct BoostWordTxn<'env> {
    stm: &'env BoostStm,
    ticket: u64,
    kind: TxKind,
    /// Abstract-lock keys acquired by this attempt, in acquisition order.
    held: Vec<i64>,
    /// Compensation log: (location, previous word), in application order.
    undo: Vec<(&'env TVarCore, u64)>,
    /// First-touch read log: (location, word observed). Boost has no
    /// version clock, so a parked `retry()` re-validates by *value*
    /// comparison against these observations.
    reads: Vec<(&'env TVarCore, u64)>,
    /// Open child depth (flat nesting — bookkeeping only).
    depth: u32,
    tracer: Option<Box<AttemptTracer>>,
}

impl<'env> BoostWordTxn<'env> {
    /// Acquire the abstract lock of `core` for this attempt, aborting on
    /// conflict. Returns whether this was the attempt's first touch of the
    /// location.
    fn acquire(&mut self, core: &'env TVarCore) -> Result<bool, Abort> {
        let key = lock_key(core);
        if !self.stm.locks.try_acquire(key, self.ticket) {
            return Err(Abort::new(AbortReason::LockConflict));
        }
        if self.held.contains(&key) {
            Ok(false)
        } else {
            self.held.push(key);
            Ok(true)
        }
    }

    /// Top-level commit: discard the compensation log and release every
    /// abstract lock. Cannot fail — under strict 2PL the attempt owns all
    /// of its locations, so there is nothing left to validate.
    fn commit(&mut self) {
        debug_assert_eq!(self.depth, 0, "commit with an open child");
        // Commit hook (durability seam): fire before the compensation
        // log is discarded and before any abstract lock releases —
        // under strict 2PL no conflicting transaction can touch these
        // locations until the locks drop, so per-location hook order
        // equals commit order (see stm_core::hook). The log appends one
        // entry per write, so a location written twice is reported
        // twice — each time with its final committed word
        // (`value_unsync` is safe under the held abstract lock). Boost
        // never ticks the clock; the record's version is the advisory 0.
        if !self.undo.is_empty() {
            if let Some(hook) = self.stm.config.commit_hook.as_deref() {
                let undo = &self.undo;
                let iter = |f: &mut dyn FnMut(usize, u64)| {
                    for (core, _) in undo {
                        f(core.id(), core.value_unsync());
                    }
                };
                hook.on_commit(&WriteRecord::new(0, undo.len(), &iter));
            }
        }
        // Wake parked retry()-waiters (and backstop sleepers) on every
        // written location — abstract locks still held, so notify order
        // is commit order. The log may repeat a location; the second
        // notification finds no live waiter and is harmless.
        if !self.undo.is_empty() {
            let undo = &self.undo;
            wait::notify_commit(&|f| {
                for (core, _) in undo {
                    f(core.id());
                }
            });
        }
        self.undo.clear();
        for key in self.held.drain(..).rev() {
            self.stm.locks.release(key, self.ticket);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            // Stamped only now, with every abstract lock released: any
            // later-stamped begin is guaranteed to observe these writes.
            t.commit_top();
        }
    }

    /// Attempt abort: replay the compensation log backwards, then release
    /// every abstract lock.
    fn on_abort(&mut self) {
        for (core, old) in self.undo.drain(..).rev() {
            core.store_value(old);
        }
        for key in self.held.drain(..).rev() {
            self.stm.locks.release(key, self.ticket);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.abort_all();
        }
    }
}

impl<'env> Transaction<'env> for BoostWordTxn<'env> {
    fn read_word(&mut self, core: &'env TVarCore) -> Result<u64, Abort> {
        let first = self.acquire(core)?;
        let word = core.value_unsync();
        if first {
            self.reads.push((core, word));
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            if first {
                t.op(core.id(), TraceOp::Read(word));
            } else {
                t.op_held(core.id(), TraceOp::Read(word));
            }
        }
        Ok(word)
    }

    fn write_word(&mut self, core: &'env TVarCore, word: u64) -> Result<(), Abort> {
        let first = self.acquire(core)?;
        self.undo.push((core, core.value_unsync()));
        core.store_value(word);
        if let Some(t) = self.tracer.as_deref_mut() {
            if first {
                t.op(core.id(), TraceOp::Write(word));
            } else {
                t.op_held(core.id(), TraceOp::Write(word));
            }
        }
        Ok(())
    }

    fn child_enter(&mut self, _kind: TxKind) -> Result<(), Abort> {
        self.depth += 1;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.begin_child(next_ticket().get());
        }
        Ok(())
    }

    fn child_commit(&mut self) -> Result<(), Abort> {
        debug_assert!(self.depth > 0, "child commit without child");
        self.depth -= 1;
        self.stm.stats.record_child_commit();
        if let Some(t) = self.tracer.as_deref_mut() {
            // Eager in-place writes under strict 2PL: the child's effects
            // are already applied and its abstract locks stay with the
            // attempt (outheritance by construction), so the child may
            // settle as a model transaction even when it wrote.
            t.commit_child_settled();
        }
        Ok(())
    }

    fn child_abort(&mut self) {
        debug_assert!(self.depth > 0, "child abort without child");
        self.depth -= 1;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.abort_child();
        }
    }

    fn kind(&self) -> TxKind {
        self.kind
    }

    fn ticket(&self) -> u64 {
        self.ticket
    }
}

impl Stm for BoostStm {
    type Txn<'env> = BoostWordTxn<'env>;

    fn name(&self) -> &'static str {
        "Boost"
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    fn config(&self) -> &StmConfig {
        &self.config
    }

    fn try_run<'env, R>(
        &'env self,
        kind: TxKind,
        mut f: impl FnMut(&mut Self::Txn<'env>) -> Result<R, Abort>,
    ) -> Result<R, RunError> {
        let mut cm = self.config.cm.build(&self.config, next_ticket().get());
        let mut wait_streak: u32 = 0;
        retry_loop_waiting(&self.config, &self.stats, |attempt| {
            cm.on_start(attempt);
            let ticket = next_ticket().get();
            let tracer = self
                .config
                .trace
                .clone()
                .map(|sink| Box::new(AttemptTracer::begin_top(sink, ticket)));
            let mut txn = BoostWordTxn {
                stm: self,
                ticket,
                kind,
                held: Vec::new(),
                undo: Vec::new(),
                reads: Vec::new(),
                depth: 0,
                tracer,
            };
            match f(&mut txn) {
                Ok(r) => {
                    txn.commit();
                    cm.on_commit();
                    Ok(r)
                }
                Err(abort) => {
                    txn.on_abort();
                    if abort.reason.is_explicit_retry() && !wait::alternative_pending() {
                        // Genuine precondition wait: compensations are
                        // replayed and locks released, so the read log
                        // holds pre-attempt observations — park until a
                        // commit changes one of them (uncharged).
                        if txn.reads.is_empty() {
                            return Err(AttemptFail::WouldBlock);
                        }
                        wait_streak += 1;
                        let reads = &txn.reads;
                        let _ = wait::wait_for_locations(
                            &mut reads.iter().map(|(core, _)| core.id()),
                            &|| {
                                reads
                                    .iter()
                                    .all(|(core, word)| core.value_unsync() == *word)
                            },
                            wait_streak,
                            &self.stats,
                        );
                        return Err(AttemptFail::Waited);
                    }
                    wait_streak = 0;
                    let decision = cm.on_conflict(&ConflictCtx::retry(abort.reason, attempt));
                    Err(AttemptFail::Conflict(abort, decision))
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::TVar;

    #[test]
    fn read_write_roundtrip_releases_locks() {
        let stm = BoostStm::new();
        let v = TVar::new(41u64);
        let out = stm.run(TxKind::Regular, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)?;
            tx.read(&v)
        });
        assert_eq!(out, 42);
        assert_eq!(v.load_atomic(), 42);
        assert_eq!(stm.locks().held(), 0, "2PL must release at commit");
        assert_eq!(stm.stats().commits, 1);
    }

    #[test]
    fn abort_replays_compensations_in_reverse() {
        let stm = BoostStm::new();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let mut failed = false;
        stm.run(TxKind::Regular, |tx| {
            tx.write(&a, 10)?;
            tx.write(&b, 20)?;
            tx.write(&a, 100)?;
            if !failed {
                failed = true;
                return Err(Abort::new(AbortReason::Explicit));
            }
            Ok(())
        });
        // The aborted attempt's eager writes were compensated before the
        // retry began, and the retry then re-applied them.
        assert_eq!((a.load_atomic(), b.load_atomic()), (100, 20));
        assert_eq!(stm.stats().aborts(), 1);
        assert_eq!(stm.locks().held(), 0);
    }

    #[test]
    fn conflicting_acquisition_aborts_the_requester() {
        let stm = BoostStm::with_config(StmConfig::default().with_max_retries(1));
        let v = TVar::new(0u64);
        // A foreign owner squats on the abstract lock out-of-band.
        assert!(stm.locks().try_acquire(lock_key(v.core()), u64::MAX));
        let r = stm.try_run(TxKind::Regular, |tx| tx.read(&v));
        assert!(matches!(r, Err(RunError::RetriesExhausted { .. })));
        stm.locks().release(lock_key(v.core()), u64::MAX);
        assert_eq!(stm.run(TxKind::Regular, |tx| tx.read(&v)), 0);
    }

    #[test]
    fn children_nest_flat_and_keep_locks_until_top_commit() {
        let stm = BoostStm::new();
        let v = TVar::new(0u64);
        stm.run(TxKind::Regular, |tx| {
            tx.child(TxKind::Regular, |t| t.write(&v, 7))?;
            // The child's abstract lock was passed to the attempt, not
            // released: a re-touch must be reentrant, not a self-conflict.
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)
        });
        assert_eq!(v.load_atomic(), 8);
        assert_eq!(stm.stats().child_commits, 1);
        assert_eq!(stm.locks().held(), 0);
    }

    #[test]
    fn waiting_retries_are_not_charged_against_a_bounded_budget() {
        // max_retries = 1 conflict, but FOUR precondition waits then a
        // commit: a wait is not a loss, so the run must not exhaust.
        let stm = BoostStm::with_config(StmConfig::default().with_max_retries(1));
        let v = TVar::new(0u64);
        let mut waits_left = 4;
        let r = stm.try_run(TxKind::Regular, |tx| {
            let x = tx.read(&v)?;
            if waits_left > 0 {
                waits_left -= 1;
                return tx.retry();
            }
            tx.write(&v, x + 1)
        });
        assert!(r.is_ok(), "waits charged against max_retries: {r:?}");
        assert_eq!(v.load_atomic(), 1);
        let snap = stm.stats();
        assert_eq!(snap.explicit_retries(), 4);
        assert_eq!(snap.retry_parks, 4);
        assert_eq!(snap.cm_waits(), 0);
        assert_eq!(stm.locks().held(), 0, "waits must not pin abstract locks");
    }

    #[test]
    fn empty_read_set_retry_is_would_block_forever() {
        // retry() before reading anything: no commit could ever wake
        // it, so the run ends with the distinct error instead of
        // parking until a watchdog kills it. A write alone is not a
        // wakeable precondition either.
        let stm = BoostStm::new();
        let w = TVar::new(1u64);
        let r: Result<(), _> = stm.try_run(TxKind::Regular, |tx| {
            tx.write(&w, 2)?;
            tx.retry()
        });
        assert!(
            matches!(r, Err(RunError::WouldBlockForever { attempts: 1 })),
            "{r:?}"
        );
        assert_eq!(stm.locks().held(), 0);
    }

    #[test]
    fn registry_builds_boost_by_name() {
        let mut reg = BackendRegistry::new();
        register_backends(&mut reg);
        let b = reg.build_default("boost").expect("registered");
        assert_eq!(b.name(), "Boost");
        let v = TVar::new(5u64);
        let out = b.run(TxKind::Regular, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x * 2)?;
            tx.read(&v)
        });
        assert_eq!(out, 10);
    }
}

//! Abstract locks — boosting's protection elements.
//!
//! One logical lock per key: set operations on *different* keys commute,
//! so only same-key operations conflict (this is the commutativity-based
//! conflict abstraction the paper's Section II mentions as the natural
//! extension of its protection-element model). Locks are owner-tracked
//! and reentrant for their owner, and acquired two-phase: everything a
//! transaction (or composition, under outheritance) acquired is released
//! together at top-level commit or abort.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Owner-tracked abstract locks keyed by `i64`.
#[derive(Debug, Default)]
pub struct AbstractLocks {
    /// key -> owner ticket.
    owners: Mutex<HashMap<i64, u64>>,
}

impl AbstractLocks {
    /// Fresh lock manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire the lock of `key` for `owner`. Returns `true` on
    /// success or if `owner` already holds it (reentrant).
    pub fn try_acquire(&self, key: i64, owner: u64) -> bool {
        let mut m = self.owners.lock();
        match m.get(&key) {
            Some(&o) => o == owner,
            None => {
                m.insert(key, owner);
                true
            }
        }
    }

    /// Release `key` if held by `owner` (idempotent otherwise).
    pub fn release(&self, key: i64, owner: u64) {
        let mut m = self.owners.lock();
        if m.get(&key) == Some(&owner) {
            m.remove(&key);
        }
    }

    /// Transfer ownership of `key` from `child` to `parent` — the
    /// mechanical heart of outheritance for boosting.
    pub fn pass_up(&self, key: i64, child: u64, parent: u64) {
        let mut m = self.owners.lock();
        if m.get(&key) == Some(&child) {
            m.insert(key, parent);
        }
    }

    /// Current owner of `key` (diagnostics/tests).
    #[must_use]
    pub fn owner_of(&self, key: i64) -> Option<u64> {
        self.owners.lock().get(&key).copied()
    }

    /// Number of currently held locks (diagnostics/tests).
    #[must_use]
    pub fn held(&self) -> usize {
        self.owners.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_exclusive_and_reentrant() {
        let l = AbstractLocks::new();
        assert!(l.try_acquire(7, 1));
        assert!(l.try_acquire(7, 1), "reentrant for the owner");
        assert!(!l.try_acquire(7, 2), "exclusive across owners");
        assert!(l.try_acquire(8, 2), "different keys are independent");
    }

    #[test]
    fn release_is_owner_checked() {
        let l = AbstractLocks::new();
        assert!(l.try_acquire(7, 1));
        l.release(7, 2); // not the owner: no-op
        assert_eq!(l.owner_of(7), Some(1));
        l.release(7, 1);
        assert_eq!(l.owner_of(7), None);
        assert!(l.try_acquire(7, 2));
    }

    #[test]
    fn pass_up_transfers_ownership() {
        let l = AbstractLocks::new();
        assert!(l.try_acquire(7, 10)); // child
        l.pass_up(7, 10, 1); // outherit to parent
        assert_eq!(l.owner_of(7), Some(1));
        assert!(!l.try_acquire(7, 10), "child no longer owns it");
        assert!(l.try_acquire(7, 1), "parent does (reentrant)");
    }
}

//! Optional execution tracing: maps a live OE-STM run onto the event
//! vocabulary of the paper's history model (begin / op / acquire / release
//! / commit / abort), for checking by the `histories` crate.
//!
//! ## Mapping
//!
//! The model has *flat* transactions: a composition is a sequence of
//! sibling transactions of one process, not a tree. The tracer therefore
//! emits:
//!
//! * one model transaction per **child** (begin at its first operation,
//!   commit at child commit) — the members of the composition;
//! * a model transaction for the **top level** only if it performs
//!   operations directly (a pure composition shell stays invisible);
//! * `begin` lazily at the first operation of each (sub)transaction, so
//!   the recorded per-process sequences are sequences of transactions as
//!   the model requires;
//! * on a top-level abort, `abort` events for *every* transaction begun by
//!   the attempt — including children whose provisional commits the abort
//!   revokes; the recorder drops all of their events, exactly like the
//!   paper removes aborted transactions from histories.
//!
//! A per-location hold count keeps acquire/release alternating per
//! protection element even when a location is read several times.

use std::collections::HashMap;
use std::sync::Arc;
use stm_core::trace::{current_proc_id, TraceOp, TraceSink};

#[derive(Debug, Clone, Copy)]
struct Level {
    id: u64,
    begun: bool,
}

/// Per-transaction tracing state. Boxed inside the transaction and absent
/// (zero-cost) when tracing is disabled.
#[derive(Clone)]
pub(crate) struct Tracer {
    sink: Arc<dyn TraceSink>,
    /// Hold counts per location id; acquire on 0→1, release on 1→0.
    held: HashMap<usize, u32>,
    /// Stack of (sub)transaction levels; index 0 is the top level.
    stack: Vec<Level>,
    /// Every transaction id that emitted `begin` during this attempt (for
    /// attempt-wide abort).
    attempt_begun: Vec<u64>,
    proc_id: u64,
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tracer")
            .field("held", &self.held.len())
            .field("stack", &self.stack)
            .field("proc_id", &self.proc_id)
            .finish()
    }
}

impl Tracer {
    pub(crate) fn begin_top(sink: Arc<dyn TraceSink>, tx_id: u64) -> Self {
        Self {
            sink,
            held: HashMap::new(),
            stack: vec![Level {
                id: tx_id,
                begun: false,
            }],
            attempt_begun: Vec::new(),
            proc_id: current_proc_id(),
        }
    }

    fn cur(&self) -> Level {
        *self.stack.last().expect("tracer has no live level")
    }

    /// Emit `begin` for the current level if it has not happened yet.
    fn ensure_begun(&mut self) -> u64 {
        let top = self.stack.last_mut().expect("tracer has no live level");
        if !top.begun {
            top.begun = true;
            let id = top.id;
            self.attempt_begun.push(id);
            self.sink.begin(id, self.proc_id);
            id
        } else {
            top.id
        }
    }

    pub(crate) fn begin_child(&mut self, tx_id: u64) {
        self.stack.push(Level {
            id: tx_id,
            begun: false,
        });
    }

    /// Child commit: emits `commit` if the child performed operations.
    /// Returns the child's transaction id so follow-up releases (E-STM
    /// mode) can be attributed to it.
    pub(crate) fn commit_child(&mut self) -> u64 {
        let lvl = self.stack.pop().expect("child commit without child");
        if lvl.begun {
            self.sink.commit(lvl.id, self.proc_id);
        }
        lvl.id
    }

    /// Record a read/write operation; acquires the protection element on
    /// first touch.
    pub(crate) fn op(&mut self, loc: usize, op: TraceOp) {
        let tx = self.ensure_begun();
        let count = self.held.entry(loc).or_insert(0);
        if *count == 0 {
            self.sink.acquire(tx, self.proc_id, loc);
        }
        *count += 1;
        self.sink.op(tx, self.proc_id, loc, op);
    }

    /// Record an operation on a location whose protection element is
    /// already held and tracked elsewhere (read-after-write from the write
    /// set): no hold-count change.
    pub(crate) fn op_held(&mut self, loc: usize, op: TraceOp) {
        let tx = self.ensure_begun();
        self.sink.op(tx, self.proc_id, loc, op);
    }

    /// One hold on `loc` lapsed (elastic window eviction); emits the
    /// release event when the last hold drops, attributed to the current
    /// (sub)transaction.
    pub(crate) fn drop_hold(&mut self, loc: usize) {
        let tx = self.cur().id;
        self.drop_hold_as(tx, loc);
    }

    /// Like [`drop_hold`](Self::drop_hold) with explicit attribution —
    /// used for the E-STM child-commit releases, which belong to the
    /// just-committed child rather than its (invisible) parent.
    pub(crate) fn drop_hold_as(&mut self, tx: u64, loc: usize) {
        if let Some(count) = self.held.get_mut(&loc) {
            *count -= 1;
            if *count == 0 {
                self.held.remove(&loc);
                self.sink.release(tx, self.proc_id, loc);
            }
        }
    }

    /// Commit the top level (if it became a transaction) and release
    /// everything still held.
    pub(crate) fn commit_top(&mut self) {
        debug_assert_eq!(self.stack.len(), 1);
        let lvl = self.cur();
        if lvl.begun {
            self.sink.commit(lvl.id, self.proc_id);
        }
        for (loc, _) in self.held.drain() {
            self.sink.release(lvl.id, self.proc_id, loc);
        }
        self.attempt_begun.clear();
    }

    /// Abort the whole attempt: every transaction that begun during it —
    /// children with provisional commits included — is aborted, innermost
    /// first. The recorder removes all of their events.
    pub(crate) fn abort_all(&mut self) {
        for id in self.attempt_begun.drain(..).rev() {
            self.sink.abort(id, self.proc_id);
        }
        self.stack.truncate(1);
        // Holds of an aborted attempt take no effect; drop them silently
        // (their events disappear with the aborted transactions).
        self.held.clear();
    }
}

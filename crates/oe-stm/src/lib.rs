//! # OE-STM — Outheritance-Elastic Software Transactional Memory
//!
//! The paper's primary contribution (Section V): an STM whose transactions
//! may run under the *elastic* relaxed model of Felber, Gramoli & Guerraoui
//! (DISC 2009) and which nevertheless *composes*, because committing child
//! transactions pass their protected sets to their parent — the
//! **outheritance** property the paper proves necessary and sufficient for
//! weak composability (Theorems 4.3 and 4.4).
//!
//! ## Elastic transactions in one paragraph
//!
//! A search-structure operation (`contains`, `add`, `remove` over a list,
//! skip list, hash bucket…) spends most of its time traversing nodes it
//! will never care about again. A classic transaction protects that entire
//! traversal until commit, so any concurrent update to an already-traversed
//! node aborts it. An *elastic* transaction instead protects only a sliding
//! window of its most recent reads while it has not yet written: conflicts
//! on reads that slid out of the window are ignored ("the transaction
//! cuts itself into pieces"). From its first write on it behaves
//! classically. The minimal protected set of an update transaction is
//! therefore `{r_k .. r_n}` — first written location to last access — and
//! of a read-only one just the last read.
//!
//! ## Outheritance
//!
//! Composing elastic operations naively breaks atomicity: in Fig. 1 of the
//! paper, `insertIfAbsent(x, y) = contains(y); if absent insert(x)` built
//! from elastic children lets a concurrent `insert(y)` slip between the
//! check and the insert, because `contains(y)`'s protected set is released
//! when it (the child) commits. OE-STM fixes this with `outherit()`
//! (Fig. 4): at child commit the child's read set, last-read window entries
//! and write set are added to the parent's sets and released only when the
//! *parent* commits. This crate implements both behaviours:
//!
//! * [`OeStm::new`] — outheritance **on**: composition is safe (the
//!   paper's OE-STM);
//! * [`OeStm::estm_compat`] — outheritance **off**: child protected sets
//!   are released at child commit, reproducing the composition bug for
//!   demonstration and testing (the paper's un-modified E-STM).
//!
//! ## Example
//!
//! ```
//! use oe_stm::OeStm;
//! use stm_core::{Stm, Transaction, TVar, TxKind};
//!
//! let stm = OeStm::new();
//! let a = TVar::new(0i64);
//! let b = TVar::new(10i64);
//! // Compose two child transactions; outheritance keeps both atomic.
//! stm.run(TxKind::Elastic, |tx| {
//!     tx.child(TxKind::Elastic, |tx| {
//!         let v = tx.read(&a)?;
//!         tx.write(&a, v + 1)
//!     })?;
//!     tx.child(TxKind::Elastic, |tx| {
//!         let v = tx.read(&b)?;
//!         tx.write(&b, v - 1)
//!     })
//! });
//! assert_eq!(a.load_atomic(), 1);
//! assert_eq!(b.load_atomic(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod txn;
pub mod window;

pub use txn::OeTxn;

use std::sync::Arc;
use stm_core::dynstm::{BackendRegistry, BackendSpec};
use stm_core::stm::{retry_loop_waiting, AttemptFail};
use stm_core::ticket::next_ticket;
use stm_core::trace::TraceSink;
use stm_core::wait;
use stm_core::{Abort, GlobalClock, RunError, StatsSnapshot, Stm, StmConfig, StmStats, TxKind};

/// Register this crate's backends: `"oe"` (outheritance on — the paper's
/// OE-STM) and `"oe-estm-compat"` (outheritance off — the E-STM baseline
/// that demonstrably breaks composition, kept for ablations).
pub fn register_backends(registry: &mut BackendRegistry) {
    fn make_oe(config: StmConfig) -> Box<dyn stm_core::dynstm::DynStm> {
        Box::new(OeStm::with_config(config))
    }
    fn make_estm(config: StmConfig) -> Box<dyn stm_core::dynstm::DynStm> {
        Box::new(OeStm::estm_compat_with_config(config))
    }
    registry.register(BackendSpec::new(
        "oe",
        "OE-STM: elastic transactions composed via outheritance (the paper)",
        make_oe,
    ));
    registry.register(BackendSpec::new(
        "oe-estm-compat",
        "E-STM compatibility mode: elastic, no outheritance (Fig. 1 bug)",
        make_estm,
    ));
}

/// The OE-STM instance.
///
/// See the [crate docs](crate) for the model. Construct with [`OeStm::new`]
/// (outheritance on) or [`OeStm::estm_compat`] (outheritance off, the
/// non-composable baseline used to demonstrate the paper's Fig. 1 bug).
pub struct OeStm {
    clock: GlobalClock,
    stats: StmStats,
    config: StmConfig,
    outheritance: bool,
}

impl core::fmt::Debug for OeStm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OeStm")
            .field("outheritance", &self.outheritance)
            .field("config", &self.config)
            .finish()
    }
}

impl Default for OeStm {
    fn default() -> Self {
        Self::new()
    }
}

impl OeStm {
    /// OE-STM proper: elastic transactions with outheritance (composable).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(StmConfig::default())
    }

    /// OE-STM with an explicit configuration.
    #[must_use]
    pub fn with_config(config: StmConfig) -> Self {
        Self {
            clock: GlobalClock::new(),
            stats: StmStats::new(),
            config,
            outheritance: true,
        }
    }

    /// E-STM compatibility mode: elastic transactions **without**
    /// outheritance. Children release their protected sets when they
    /// commit, so compositions of elastic children are *not* atomic — this
    /// mode exists to reproduce and test the failure the paper fixes.
    #[must_use]
    pub fn estm_compat() -> Self {
        let mut stm = Self::new();
        stm.outheritance = false;
        stm
    }

    /// E-STM compatibility mode with an explicit configuration.
    #[must_use]
    pub fn estm_compat_with_config(config: StmConfig) -> Self {
        let mut stm = Self::with_config(config);
        stm.outheritance = false;
        stm
    }

    /// Attach a trace sink; subsequent transactions emit the history-model
    /// events (begin / op / acquire / release / commit / abort) so the run
    /// can be checked by the `histories` crate. Sugar for
    /// [`StmConfig::with_trace_sink`] — every registry backend accepts a
    /// sink through its config; this static-dispatch builder predates that
    /// and is kept for the direct-construction API.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.config.trace = Some(sink);
        self
    }

    /// Whether children outherit their protected sets (true for OE-STM,
    /// false for E-STM compatibility mode).
    #[must_use]
    pub fn outheritance(&self) -> bool {
        self.outheritance
    }

    pub(crate) fn sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.config.trace.clone()
    }

    pub(crate) fn counters(&self) -> &StmStats {
        &self.stats
    }
}

impl Stm for OeStm {
    type Txn<'env> = OeTxn<'env>;

    fn name(&self) -> &'static str {
        if self.outheritance {
            "OE-STM"
        } else {
            "E-STM"
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }

    fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    fn config(&self) -> &StmConfig {
        &self.config
    }

    fn try_run<'env, R>(
        &'env self,
        kind: TxKind,
        mut f: impl FnMut(&mut Self::Txn<'env>) -> Result<R, Abort>,
    ) -> Result<R, RunError> {
        let seed = next_ticket().get();
        // One transaction object (and one scratch, and one contention-
        // manager state) per run call: every attempt restarts it in
        // place, so the read/write sets and the nesting-frame stack keep
        // their capacity across attempts.
        let mut txn = OeTxn::begin(
            self,
            kind,
            txn::OeScratch::acquire(),
            self.config.cm.build(&self.config, seed),
        );
        let mut wait_streak: u32 = 0;
        retry_loop_waiting(&self.config, &self.stats, |attempt| {
            txn.restart(attempt);
            let outcome = match f(&mut txn) {
                Ok(r) => match txn.commit() {
                    Ok(()) => Ok(r),
                    Err(abort) => {
                        txn.on_abort();
                        Err(abort)
                    }
                },
                Err(abort) => {
                    txn.on_abort();
                    Err(abort)
                }
            };
            match outcome {
                Ok(r) => {
                    txn.cm_commit();
                    Ok(r)
                }
                Err(abort) => {
                    if abort.reason.is_explicit_retry() && !wait::alternative_pending() {
                        // Genuine precondition wait: fold the elastic
                        // window into the read set and park on the full
                        // footprint until a commit touches it (uncharged).
                        if !txn.fold_reads_for_wait() {
                            return Err(AttemptFail::WouldBlock);
                        }
                        wait_streak += 1;
                        let _ = wait::wait_for_locations(
                            &mut txn.read_locations(),
                            &|| txn.reads_still_valid(),
                            wait_streak,
                            &self.stats,
                        );
                        return Err(AttemptFail::Waited);
                    }
                    wait_streak = 0;
                    Err(AttemptFail::Conflict(abort, txn.arbitrate(abort)))
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::{AbortReason, TVar, Transaction};

    #[test]
    fn read_your_own_write() {
        let stm = OeStm::new();
        let v = TVar::new(1u64);
        let out = stm.run(TxKind::Elastic, |tx| {
            tx.write(&v, 5)?;
            tx.read(&v)
        });
        assert_eq!(out, 5);
        assert_eq!(v.load_atomic(), 5);
    }

    #[test]
    fn elastic_prefix_conflicts_are_ignored() {
        // Traverse three locations elastically; overwrite the first after
        // it slid out of the window; the transaction must still commit.
        let stm = OeStm::new();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let c = TVar::new(3u64);
        let d = TVar::new(0u64);
        stm.run(TxKind::Elastic, |tx| {
            let ra = tx.read(&a)?;
            let rb = tx.read(&b)?;
            // `a` slides out of the (size 2) window here.
            let rc = tx.read(&c)?;
            // Concurrent writer hits `a` — a *prefix* conflict.
            let nv = stm.clock().tick();
            a.store_atomic(99, nv);
            tx.write(&d, ra + rb + rc)
        });
        assert_eq!(d.load_atomic(), 6);
        assert_eq!(
            stm.stats().aborts(),
            0,
            "prefix conflict must not abort an elastic transaction"
        );
    }

    #[test]
    fn regular_transaction_aborts_on_same_conflict() {
        // The same interleaving as above but with a Regular transaction:
        // classic semantics must abort (read validation at commit).
        let stm = OeStm::new();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let c = TVar::new(3u64);
        let d = TVar::new(0u64);
        let mut sabotage = true;
        stm.run(TxKind::Regular, |tx| {
            let ra = tx.read(&a)?;
            let rb = tx.read(&b)?;
            let rc = tx.read(&c)?;
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                a.store_atomic(99, nv);
            }
            tx.write(&d, ra + rb + rc)
        });
        assert!(stm.stats().aborts() >= 1, "classic mode must conflict");
        // Retry reads the new value of a: 99 + 2 + 3.
        assert_eq!(d.load_atomic(), 104);
    }

    #[test]
    fn elastic_window_conflict_aborts() {
        // A conflict on a read still *inside* the window is NOT relaxed.
        let stm = OeStm::new();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let d = TVar::new(0u64);
        let mut sabotage = true;
        stm.run(TxKind::Elastic, |tx| {
            let ra = tx.read(&a)?;
            let rb = tx.read(&b)?; // window = {a, b}
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                b.store_atomic(99, nv); // b is still windowed
            }
            // Next read needs a snapshot advance, which validates the
            // window and must fail.
            let _ = tx.read(&d)?;
            tx.write(&d, ra + rb)
        });
        assert!(
            stm.stats().aborts_by_cause[AbortReason::ElasticCut.index()] >= 1,
            "windowed conflict must abort the elastic transaction"
        );
        assert_eq!(d.load_atomic(), 1 + 99);
    }

    #[test]
    fn hardening_protects_post_write_reads() {
        // After the first write, an elastic transaction is classic: a
        // conflict on any post-write read aborts it.
        let stm = OeStm::new();
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let c = TVar::new(3u64);
        let out = TVar::new(0u64);
        let mut sabotage = true;
        stm.run(TxKind::Elastic, |tx| {
            let ra = tx.read(&a)?;
            tx.write(&out, ra)?; // hardens here
            let rb = tx.read(&b)?;
            let _rc = tx.read(&c)?;
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                b.store_atomic(99, nv); // b was read after hardening
            }
            tx.write(&out, ra + rb)
        });
        assert!(stm.stats().aborts() >= 1);
        assert_eq!(out.load_atomic(), 1 + 99);
    }

    #[test]
    fn outherited_child_reads_stay_protected() {
        // Fig. 1 scenario, abstract version: child 1 reads y; between the
        // children a concurrent writer changes y; child 2 writes x. With
        // outheritance the parent must abort and retry.
        let stm = OeStm::new();
        let y = TVar::new(0u64);
        let x = TVar::new(0u64);
        let mut sabotage = true;
        let observed = stm.run(TxKind::Elastic, |tx| {
            let ry = tx.child(TxKind::Elastic, |tx| tx.read(&y))?;
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                y.store_atomic(1, nv);
            }
            tx.child(TxKind::Elastic, |tx| tx.write(&x, 10 + ry))?;
            Ok(ry)
        });
        // The retry observes y = 1; the stale first attempt aborted.
        assert_eq!(observed, 1);
        assert_eq!(x.load_atomic(), 11);
        assert!(stm.stats().aborts() >= 1, "stale composition must abort");
        assert!(stm.stats().outherits >= 1);
    }

    #[test]
    fn estm_compat_loses_child_protection() {
        // Same scenario, outheritance disabled: the parent commits without
        // noticing the overwrite of y — the Fig. 1 atomicity violation.
        let stm = OeStm::estm_compat();
        let y = TVar::new(0u64);
        let x = TVar::new(0u64);
        let mut sabotage = true;
        let observed = stm.run(TxKind::Elastic, |tx| {
            let ry = tx.child(TxKind::Elastic, |tx| tx.read(&y))?;
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                y.store_atomic(1, nv);
            }
            tx.child(TxKind::Elastic, |tx| tx.write(&x, 10 + ry))?;
            Ok(ry)
        });
        assert_eq!(observed, 0, "E-STM commits against the stale read of y");
        assert_eq!(x.load_atomic(), 10);
        assert_eq!(stm.stats().aborts(), 0, "the violation goes unnoticed");
    }

    #[test]
    fn child_results_compose_sequentially() {
        let stm = OeStm::new();
        let a = TVar::new(5u64);
        let b = TVar::new(7u64);
        let sum = stm.run(TxKind::Elastic, |tx| {
            let ra = tx.child(TxKind::Elastic, |tx| tx.read(&a))?;
            let rb = tx.child(TxKind::Elastic, |tx| tx.read(&b))?;
            Ok(ra + rb)
        });
        assert_eq!(sum, 12);
        assert_eq!(stm.stats().child_commits, 2);
    }

    #[test]
    fn nested_children_outherit_transitively() {
        let stm = OeStm::new();
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        stm.run(TxKind::Elastic, |tx| {
            tx.child(TxKind::Elastic, |tx| {
                tx.child(TxKind::Elastic, |tx| tx.write(&a, 1))?;
                tx.write(&b, 2)
            })
        });
        assert_eq!((a.load_atomic(), b.load_atomic()), (1, 2));
        // Two child commits (inner and outer), each outheriting.
        assert_eq!(stm.stats().child_commits, 2);
        assert_eq!(stm.stats().outherits, 2);
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        use std::sync::Arc;
        let stm = Arc::new(OeStm::new());
        let counter = Arc::new(TVar::new(0u64));
        let threads = stm_core::parallel::worker_threads(4) as u64;
        let per_thread = 500u64;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let stm = Arc::clone(&stm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    stm.run(TxKind::Elastic, |tx| {
                        let c = tx.read(&*counter)?;
                        tx.write(&*counter, c + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_atomic(), threads * per_thread);
    }

    #[test]
    fn every_cm_policy_recovers_elastic_window_conflicts() {
        use stm_core::cm::CmPolicy;
        // A windowed conflict (not relaxable) must retry to success under
        // each contention manager, in elastic mode, with the elastic-cut
        // aborts filed as conflicts and pacing matching the policy.
        for cm in CmPolicy::ALL {
            let stm = OeStm::with_config(StmConfig::default().with_cm(cm));
            let a = TVar::new(1u64);
            let b = TVar::new(2u64);
            let d = TVar::new(0u64);
            let mut sabotage_left = 2;
            stm.run(TxKind::Elastic, |tx| {
                let ra = tx.read(&a)?;
                let rb = tx.read(&b)?; // window = {a, b}
                if sabotage_left > 0 {
                    sabotage_left -= 1;
                    let nv = stm.clock().tick();
                    b.store_atomic(rb + 10, nv); // b is still windowed
                }
                let _ = tx.read(&d)?; // snapshot advance validates the window
                tx.write(&d, ra + rb)
            });
            let snap = stm.stats();
            assert_eq!(snap.commits, 1, "{cm}");
            assert_eq!(snap.aborts(), 2, "{cm}");
            assert!(
                snap.aborts_by_cause[AbortReason::ElasticCut.index()] >= 1,
                "{cm}: the windowed conflict must cut"
            );
            assert_eq!(snap.explicit_retries(), 0, "{cm}");
            if cm == CmPolicy::Suicide {
                assert_eq!(snap.cm_waits(), 0, "{cm}: suicide must not pace");
            } else {
                assert_eq!(snap.cm_waits(), 2, "{cm}: every abort is paced");
            }
        }
    }

    #[test]
    fn names_reflect_mode() {
        assert_eq!(OeStm::new().name(), "OE-STM");
        assert_eq!(OeStm::estm_compat().name(), "E-STM");
    }

    #[test]
    fn explicit_retry_is_not_a_conflict_abort_in_both_modes() {
        // The facade's user-level retry must propagate through the OE
        // retry loop — in outheriting mode AND in the E-STM compatibility
        // mode — and land in its own statistics category, even when the
        // retry is raised inside an elastic child.
        for stm in [OeStm::new(), OeStm::estm_compat()] {
            let v = TVar::new(0u64);
            let mut retried = false;
            stm.run(TxKind::Elastic, |tx| {
                tx.child(TxKind::Elastic, |tx| {
                    let cur = tx.read(&v)?;
                    tx.write(&v, cur + 5)?;
                    if !retried {
                        retried = true;
                        return tx.retry();
                    }
                    Ok(())
                })
            });
            assert_eq!(v.load_atomic(), 5, "{}", stm.name());
            let snap = stm.stats();
            assert_eq!(snap.commits, 1, "{}", stm.name());
            assert_eq!(snap.explicit_retries(), 1, "{}", stm.name());
            assert_eq!(
                snap.aborts(),
                0,
                "{}: retry counted as conflict",
                stm.name()
            );
            assert_eq!(snap.retry_parks, 1, "{}: retry must park", stm.name());
            assert_eq!(snap.cm_waits(), 0, "{}: waits are unpaced", stm.name());
        }
    }

    #[test]
    fn waiting_retries_are_not_charged_against_a_bounded_budget() {
        // max_retries = 1 conflict, but FOUR precondition waits then a
        // commit: a wait is not a loss, so the run must not exhaust.
        // Exercised in both registry modes, with the read held in the
        // elastic window (the wait path must fold it into the read set).
        for stm in [
            OeStm::with_config(StmConfig::default().with_max_retries(1)),
            OeStm::estm_compat_with_config(StmConfig::default().with_max_retries(1)),
        ] {
            let v = TVar::new(0u64);
            let mut waits_left = 4;
            let r = stm.try_run(TxKind::Elastic, |tx| {
                let x = tx.read(&v)?;
                if waits_left > 0 {
                    waits_left -= 1;
                    return tx.retry();
                }
                tx.write(&v, x + 1)
            });
            assert!(r.is_ok(), "{}: waits charged: {r:?}", stm.name());
            assert_eq!(v.load_atomic(), 1, "{}", stm.name());
            let snap = stm.stats();
            assert_eq!(snap.explicit_retries(), 4, "{}", stm.name());
            assert_eq!(snap.retry_parks, 4, "{}", stm.name());
            assert_eq!(snap.cm_waits(), 0, "{}", stm.name());
        }
    }

    #[test]
    fn empty_read_set_retry_is_would_block_forever() {
        // retry() before reading anything: no commit could ever wake
        // it, so the run ends with the distinct error instead of
        // parking until a watchdog kills it.
        for stm in [OeStm::new(), OeStm::estm_compat()] {
            let r: Result<(), _> = stm.try_run(TxKind::Elastic, |tx| tx.retry());
            assert!(
                matches!(r, Err(RunError::WouldBlockForever { attempts: 1 })),
                "{}: {r:?}",
                stm.name()
            );
        }
    }
}

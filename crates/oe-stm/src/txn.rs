// lint:hot-path
//! The OE-STM transaction: elastic execution with outheritance-based
//! composition (Sections V and VI of the paper).

use crate::OeStm;
use stm_core::cm::{Arbitrate, CmState, ConflictCtx, ContentionManager};
use stm_core::hook::WriteRecord;
use stm_core::scratch::TxScratch;
use stm_core::ticket::next_ticket;
use stm_core::trace::{AttemptTracer, TraceOp};
use stm_core::tvar::{ReadConflict, TVarCore};
use stm_core::wait;
use stm_core::{Abort, AbortReason, Stm, Transaction, TxKind};

use crate::window::Window;

/// Saved parent state across a child transaction (one nesting frame).
///
/// The parent's window is parked here *by value*: [`Window`] is a
/// fixed-capacity inline ring, so saving and restoring it moves a couple
/// hundred bytes on the stack instead of allocating a `Vec` per child —
/// composition stays on the allocation-free hot path.
#[derive(Debug)]
struct Frame<'env> {
    saved_mode: TxKind,
    saved_hardened: bool,
    saved_window: Window<'env>,
    /// Parent's read-set length at child begin; the child's reads are the
    /// suffix past this mark.
    read_mark: usize,
}

/// The per-run reusable buffers of an OE-STM transaction: the shared
/// [`TxScratch`] (read set, write set) plus the nesting-frame stack.
#[derive(Debug)]
pub(crate) struct OeScratch<'env> {
    base: TxScratch<'env>,
    frames: Vec<Frame<'env>>,
}

impl OeScratch<'_> {
    pub(crate) fn acquire() -> Self {
        Self {
            base: TxScratch::acquire(),
            frames: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.base.reset();
        self.frames.clear();
    }
}

/// Bound on snapshot-advance attempts within a single read (prevents
/// livelock against a pathological stream of conflicting commits).
const MAX_ADVANCE_ATTEMPTS: u32 = 16;

/// One OE-STM transaction attempt.
///
/// An attempt executes either as a *regular* (classic) transaction or as an
/// *elastic* one. Elastic attempts keep only a sliding [`Window`] of their
/// most recent reads until their first write ("the read-only prefix"),
/// ignoring conflicts on everything that slid out; from the first write on
/// they behave classically. Composition runs children via
/// [`Transaction::child`]; with outheritance enabled (the OE in OE-STM) a
/// committing child passes its protected set — read set, last-read window
/// entries, and write set — to the parent exactly as in Fig. 4 of the
/// paper.
#[derive(Debug)]
pub struct OeTxn<'env> {
    stm: &'env OeStm,
    /// Snapshot time: all protected reads are consistent at `rv`.
    rv: u64,
    ticket: u64,
    attempt: u64,
    cm: CmState,
    scratch: OeScratch<'env>,
    window: Window<'env>,
    /// The kind the top-level transaction was begun with (restored by
    /// `restart` after attempts that left child modes behind).
    top_kind: TxKind,
    mode: TxKind,
    /// True once the current (sub)transaction has written (elastic
    /// transactions "harden" into classic behaviour at their first write).
    hardened: bool,
    pub(crate) tracer: Option<Box<AttemptTracer>>,
}

impl<'env> OeTxn<'env> {
    pub(crate) fn begin(
        stm: &'env OeStm,
        kind: TxKind,
        scratch: OeScratch<'env>,
        cm: CmState,
    ) -> Self {
        Self {
            stm,
            rv: 0,
            ticket: 0,
            attempt: 0,
            cm,
            scratch,
            window: Window::new(stm.config().elastic_window),
            top_kind: kind,
            mode: kind,
            hardened: kind == TxKind::Regular,
            tracer: None,
        }
    }

    /// Reset for a fresh attempt (see the classic backends' `restart`):
    /// clear the scratch and nesting frames keeping capacity, empty the
    /// window, resample the clock, take a new ticket, tell the contention
    /// manager a new attempt begins, and re-arm the tracer if tracing is
    /// on.
    pub(crate) fn restart(&mut self, attempt: u64) {
        self.scratch.reset();
        self.window = Window::new(self.stm.config().elastic_window);
        self.mode = self.top_kind;
        self.hardened = self.top_kind == TxKind::Regular;
        // The tracer reserves the attempt's begin stamp, so it must be
        // armed *before* the snapshot is sampled (see stm_core::trace on
        // event stamping).
        self.tracer = self
            .stm
            .sink()
            .map(|sink| Box::new(AttemptTracer::begin_top(sink, next_ticket().get()))); // lint:allow — tracing arm, off by default
        self.rv = self.stm.clock().now();
        self.ticket = next_ticket().get();
        self.attempt = attempt;
        self.cm.on_start(attempt);
    }

    /// Ask the run's contention manager how to pace the retry after an
    /// abort (see the classic backends' `arbitrate`). The protected
    /// window entries count as work alongside the tracked reads/writes.
    pub(crate) fn arbitrate(&mut self, abort: stm_core::Abort) -> Arbitrate {
        let ctx = ConflictCtx {
            reason: abort.reason,
            attempt: self.attempt,
            ticket: self.ticket,
            owner: 0,
            writes: self.scratch.base.writes.len(),
            spins: 0,
            work: (self.scratch.base.reads.len()
                + self.scratch.base.writes.len()
                + self.window.len()) as u64,
        };
        self.cm.on_conflict(&ctx)
    }

    /// Settle the contention manager after a committed run.
    pub(crate) fn cm_commit(&mut self) {
        self.cm.on_commit();
    }

    /// The snapshot time of this attempt (diagnostics/tests).
    #[must_use]
    pub fn snapshot_time(&self) -> u64 {
        self.rv
    }

    /// Number of reads currently protected (read set + window). This is
    /// the size of the transaction's protected set minus its writes.
    #[must_use]
    pub fn protected_reads(&self) -> usize {
        self.scratch.base.reads.len() + self.window.len()
    }

    fn validate_all_reads(&self) -> bool {
        self.scratch.base.reads.validate(Some(self.ticket), |core| {
            self.scratch.base.writes.locked_version_of(core)
        }) && self.window.validate()
    }

    /// Move the snapshot forward to cover `target` (the observed version of
    /// the location that triggered the advance), requiring every currently
    /// protected read to still be valid. In elastic (non-hardened) mode
    /// this is the *elastic cut*: earlier prefix reads already slid out of
    /// the window, so their conflicts are ignored — the defining relaxation
    /// of the model. In hardened/regular mode it is a classic lazy
    /// snapshot extension.
    ///
    /// Validating now proves consistency up to at least `target` (that
    /// version is already published), so the advance never re-reads the
    /// contended global clock line.
    fn advance_snapshot(&mut self, target: u64) -> Result<(), Abort> {
        if !self.validate_all_reads() {
            let reason = if self.hardened {
                AbortReason::ExtensionFailed
            } else {
                AbortReason::ElasticCut
            };
            return Err(Abort::new(reason));
        }
        self.rv = target;
        if self.hardened {
            self.stm.counters().record_extension();
        } else {
            self.stm.counters().record_elastic_cut();
        }
        Ok(())
    }

    pub(crate) fn on_abort(&mut self) {
        if let Some(t) = self.tracer.as_mut() {
            t.abort_all();
        }
    }

    /// Fold the current elastic window into the base read set and report
    /// whether any read is registered — the wait path parks on the full
    /// footprint of the aborted attempt. (Windows parked in already-popped
    /// nesting frames are not recovered; the bounded park timeout covers
    /// the resulting — rare — missed-wake corner.)
    pub(crate) fn fold_reads_for_wait(&mut self) -> bool {
        self.window.drain_into(&mut self.scratch.base.reads);
        !self.scratch.base.reads.is_empty()
    }

    /// The attempt's read locations, for wait registration.
    pub(crate) fn read_locations(&self) -> impl Iterator<Item = usize> + '_ {
        self.scratch.base.reads.iter().map(|e| e.core.id())
    }

    /// Re-validate the folded read set with no locks held by anyone —
    /// the park-or-rerun check of the wait protocol.
    pub(crate) fn reads_still_valid(&self) -> bool {
        self.scratch.base.reads.validate(None, |_| None)
    }

    /// Top-level commit.
    pub(crate) fn commit(&mut self) -> Result<(), Abort> {
        debug_assert!(self.scratch.frames.is_empty(), "commit with live children");
        if self.scratch.base.writes.is_empty() {
            // Read-only: elastic reads were validated pairwise at each cut,
            // classic reads against rv — the snapshot is consistent.
            if let Some(t) = self.tracer.as_mut() {
                t.commit_top();
            }
            return Ok(());
        }
        // The last elastic reads (r_k..r_n of Section V) are part of the
        // minimal protected set: fold them into the read set and validate
        // everything together.
        self.window.drain_into(&mut self.scratch.base.reads);
        self.scratch.base.writes.lock_all(self.ticket)?;
        let stamp = self.stm.clock().stamp();
        let wv = stamp.wv;
        if !(stamp.exclusive && wv == self.rv + 1) {
            // Validation-skip fast path (see TL2): an exclusively won
            // wv == rv + 1 means no other update committed since the
            // snapshot time; an adopted stamp means one did.
            let ok = self.scratch.base.reads.validate(Some(self.ticket), |core| {
                self.scratch.base.writes.locked_version_of(core)
            });
            if !ok {
                self.scratch.base.writes.release_locks();
                return Err(Abort::new(AbortReason::ReadValidation));
            }
        }
        // Point of no return: validation succeeded (elastic window
        // already folded into the read set) and every write lock is
        // held, so the commit hook observes the write set before any
        // conflicting commit can follow (see stm_core::hook). Both the
        // elastic and the estm-compat registry modes pass through here.
        if let Some(hook) = self.stm.config().commit_hook.as_deref() {
            let writes = &self.scratch.base.writes;
            let iter = |f: &mut dyn FnMut(usize, u64)| {
                for e in writes.iter() {
                    f(e.core.id(), e.value);
                }
            };
            hook.on_commit(&WriteRecord::new(wv, writes.len(), &iter));
        }
        // Wake parked retry()-waiters (and backstop sleepers) on every
        // written location — write locks still held, so notify order is
        // commit order. Both registry modes pass through here.
        {
            let writes = &self.scratch.base.writes;
            wait::notify_commit(&|f| {
                for e in writes.iter() {
                    f(e.core.id());
                }
            });
        }
        self.scratch.base.writes.write_back_and_release(wv);
        if let Some(t) = self.tracer.as_mut() {
            t.commit_top();
        }
        Ok(())
    }

    fn read_core(&mut self, core: &'env TVarCore) -> Result<u64, Abort> {
        if let Some(word) = self.scratch.base.writes.lookup(core) {
            if let Some(t) = self.tracer.as_mut() {
                t.op_held(core.id(), TraceOp::Read(word));
            }
            return Ok(word);
        }
        let mut advances = 0u32;
        let mut spins = 0u32;
        loop {
            match core.read_consistent() {
                Ok((word, version)) => {
                    if version > self.rv {
                        advances += 1;
                        if advances > MAX_ADVANCE_ATTEMPTS {
                            return Err(Abort::new(AbortReason::ReadValidation));
                        }
                        self.advance_snapshot(version)?;
                        // Re-read: the location may have changed between the
                        // consistent read and the snapshot advance.
                        continue;
                    }
                    if self.hardened {
                        self.scratch.base.reads.push(core, version);
                    } else {
                        // Elastic read-only prefix: protect through the
                        // sliding window; the evicted read is released.
                        let evicted = self.window.push(core, version);
                        if let (Some(t), Some(e)) = (self.tracer.as_mut(), evicted) {
                            t.drop_hold(e.core.id());
                        }
                        // E-STM's per-read check: the immediate past reads
                        // (the remaining window) must still be valid, so
                        // every *consecutive pair* of reads is consistent —
                        // the property elastic traversals rely on. The
                        // just-pushed entry is fresh by construction.
                        if !self.window.validate_previous() {
                            return Err(Abort::new(AbortReason::ElasticCut));
                        }
                    }
                    if let Some(t) = self.tracer.as_mut() {
                        t.op(core.id(), TraceOp::Read(word));
                    }
                    return Ok(word);
                }
                Err(ReadConflict::Locked(owner)) if owner != self.ticket => {
                    spins += 1;
                    if spins > self.stm.config().lock_spin_limit {
                        return Err(Abort::new(AbortReason::LockConflict));
                    }
                    core::hint::spin_loop();
                }
                Err(ReadConflict::Locked(_)) => {
                    // Locked by ourselves without a write-set entry cannot
                    // happen (lazy write-back only locks at commit).
                    unreachable!("self-locked location outside commit");
                }
                Err(ReadConflict::Unstable) => {
                    return Err(Abort::new(AbortReason::UnstableRead));
                }
            }
        }
    }

    fn write_core(&mut self, core: &'env TVarCore, word: u64) -> Result<(), Abort> {
        if self.mode == TxKind::Elastic && !self.hardened {
            // First write: the transaction hardens. The immediate past
            // reads (the window) become permanently tracked — they are the
            // r_k..r_n prefix boundary of the minimal protected set.
            self.hardened = true;
            self.window.drain_into(&mut self.scratch.base.reads);
        }
        let first_touch = self.scratch.base.writes.lookup(core).is_none();
        self.scratch.base.writes.insert(core, word);
        if let Some(t) = self.tracer.as_mut() {
            if first_touch {
                t.op(core.id(), TraceOp::Write(word));
            } else {
                t.op_held(core.id(), TraceOp::Write(word));
            }
        }
        Ok(())
    }
}

impl<'env> Transaction<'env> for OeTxn<'env> {
    fn read_word(&mut self, core: &'env TVarCore) -> Result<u64, Abort> {
        self.read_core(core)
    }

    fn write_word(&mut self, core: &'env TVarCore, word: u64) -> Result<(), Abort> {
        self.write_core(core, word)
    }

    /// Composition, begin half. The child runs as its own (sub)transaction
    /// of the given kind against this same object; the parent's mode,
    /// hardening flag and window are parked in a `Frame` until
    /// [`child_commit`](Transaction::child_commit).
    fn child_enter(&mut self, kind: TxKind) -> Result<(), Abort> {
        let fresh = Window::new(self.stm.config().elastic_window);
        self.scratch.frames.push(Frame {
            saved_mode: self.mode,
            saved_hardened: self.hardened,
            saved_window: core::mem::replace(&mut self.window, fresh),
            read_mark: self.scratch.base.reads.len(),
        });
        self.mode = kind;
        self.hardened = kind == TxKind::Regular;
        if let Some(t) = self.tracer.as_mut() {
            t.begin_child(next_ticket().get());
        }
        Ok(())
    }

    /// Composition, commit half. What happens to the child's protected set
    /// here is the paper's crux:
    ///
    /// * **Outheritance enabled** (OE-STM, the default): `outherit()` — the
    ///   child's window remnants join the parent's read set, and its reads
    ///   and writes stay in the parent's sets, protected until the
    ///   top-level commit (Fig. 4).
    /// * **Outheritance disabled** (E-STM compatibility mode): the child's
    ///   accesses are validated at child commit and then *released* —
    ///   reproducing the Fig. 1 composition bug that motivates the paper.
    fn child_commit(&mut self) -> Result<(), Abort> {
        let frame = self
            .scratch
            .frames
            .pop()
            .expect("child_commit without child_enter");
        if self.stm.outheritance() {
            // outherit(): pass the child's protected set to the
            // parent. Reads and writes already accumulated in the
            // shared sets; the window remnants (the child's
            // last-read entries) are folded into the read set so
            // they stay protected until the parent commits.
            self.window.drain_into(&mut self.scratch.base.reads);
            self.stm.counters().record_outherit();
            if let Some(t) = self.tracer.as_mut() {
                t.commit_child();
            }
        } else if self.mode == TxKind::Regular {
            // E-STM with a *regular* child: flat nesting. A classic
            // child's accesses stay in the parent's sets until the
            // top-level commit — this is the workaround the elastic
            // transactions paper recommends ("use regular mode when
            // composing"), safe but paying classic-conflict aborts.
            if let Some(t) = self.tracer.as_mut() {
                t.commit_child();
            }
        } else {
            // E-STM child commit: check the child's access sequence
            // is atomic as of now, then release its protection
            // (the releases follow the child's commit event, as in
            // the model).
            let ok = self.scratch.base.reads.validate_suffix(
                frame.read_mark,
                Some(self.ticket),
                |core| self.scratch.base.writes.locked_version_of(core),
            ) && self.window.validate();
            if !ok {
                return Err(Abort::new(AbortReason::ReadValidation));
            }
            if let Some(t) = self.tracer.as_mut() {
                let child_id = t.commit_child();
                for e in self.scratch.base.reads.iter().skip(frame.read_mark) {
                    t.drop_hold_as(child_id, e.core.id());
                }
                for e in self.window.iter() {
                    t.drop_hold_as(child_id, e.core.id());
                }
            }
            self.scratch.base.reads.truncate(frame.read_mark);
            self.window.clear();
        }
        self.stm.counters().record_child_commit();
        self.mode = frame.saved_mode;
        self.hardened = frame.saved_hardened;
        self.window = frame.saved_window;
        Ok(())
    }

    /// Composition, abort half: a child abort aborts the whole attempt
    /// (the retry loop re-runs the top-level transaction from scratch), so
    /// only the nesting bookkeeping is unwound here.
    fn child_abort(&mut self) {
        let _ = self
            .scratch
            .frames
            .pop()
            .expect("child_abort without child_enter");
        if let Some(t) = self.tracer.as_mut() {
            t.abort_child();
        }
    }

    fn kind(&self) -> TxKind {
        self.mode
    }

    fn ticket(&self) -> u64 {
        self.ticket
    }
}

// lint:hot-path
//! The elastic window: the sliding set of recent reads an elastic
//! transaction keeps protected before its first write.
//!
//! Felber et al.'s elastic transactions ignore conflicts on their read-only
//! prefix by protecting only the *immediate past reads* during traversal:
//! when a new read arrives, the oldest windowed read is released — in the
//! paper's vocabulary, its protection element leaves the transaction's
//! protected set, so a concurrent writer to it no longer conflicts. The
//! window (default size 2: previous and current read) is what remains of
//! the prefix in the minimal protected set.
//!
//! The window sits on the hot path of every elastic read, so it is a
//! fixed-capacity inline ring buffer — no heap allocation per transaction
//! and O(window) validation with window ≤ [`MAX_WINDOW`].

use stm_core::readset::{ReadEntry, ReadSet};
use stm_core::tvar::TVarCore;
use stm_core::vlock::LockState;

/// Hard upper bound on the window capacity (configurations are clamped).
pub const MAX_WINDOW: usize = 8;

/// The sliding window of an elastic transaction's most recent reads.
#[derive(Debug)]
pub struct Window<'env> {
    slots: [Option<ReadEntry<'env>>; MAX_WINDOW],
    /// Ring position receiving the next push.
    next: usize,
    len: usize,
    cap: usize,
}

#[inline]
fn entry_valid(e: &ReadEntry<'_>) -> bool {
    matches!(
        e.core.lock().load(),
        LockState::Unlocked { version } if version == e.version
    )
}

impl<'env> Window<'env> {
    /// An empty window holding at most `cap` entries (clamped to
    /// `2..=MAX_WINDOW`).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            slots: Default::default(),
            next: 0,
            len: 0,
            cap: cap.clamp(2, MAX_WINDOW),
        }
    }

    /// Record a read, releasing (returning) the oldest entry if the window
    /// is full. A returned entry is a *relaxation event*: that read's
    /// protection element has left the protected set.
    #[inline]
    pub fn push(&mut self, core: &'env TVarCore, version: u64) -> Option<ReadEntry<'env>> {
        let evicted = self.slots[self.next].replace(ReadEntry { core, version });
        self.next = if self.next + 1 == self.cap {
            0
        } else {
            self.next + 1
        };
        if self.len < self.cap {
            self.len += 1;
        }
        evicted
    }

    /// Check that every windowed read is still at its recorded version
    /// (the "cut" check: the last reads form a consistent anchor even if
    /// earlier prefix reads changed).
    #[must_use]
    pub fn validate(&self) -> bool {
        self.slots[..self.cap].iter().flatten().all(entry_valid)
    }

    /// Validate every windowed read *except* the most recently pushed one
    /// (which a consistent read just produced). This is E-STM's per-read
    /// check of the immediate past reads, one atomic load per entry.
    #[inline]
    #[must_use]
    pub fn validate_previous(&self) -> bool {
        if self.len <= 1 {
            return true;
        }
        let newest = if self.next == 0 {
            self.cap - 1
        } else {
            self.next - 1
        };
        for (i, slot) in self.slots[..self.cap].iter().enumerate() {
            if i == newest {
                continue;
            }
            if let Some(e) = slot {
                if !entry_valid(e) {
                    return false;
                }
            }
        }
        true
    }

    /// Move every windowed entry into `reads` (oldest first) and empty the
    /// window. Used when the transaction *hardens* (first write: the
    /// immediate past reads become permanently tracked, Section V) and by
    /// `outherit()` (the child's last-read entries pass to the parent).
    pub fn drain_into(&mut self, reads: &mut ReadSet<'env>) {
        let start = (self.next + self.cap - self.len) % self.cap;
        for k in 0..self.len {
            if let Some(e) = self.slots[(start + k) % self.cap].take() {
                reads.push(e.core, e.version);
            }
        }
        self.len = 0;
        self.next = 0;
    }

    /// Drop everything (E-STM child commit: the child's window is released
    /// instead of outherited).
    pub fn clear(&mut self) {
        self.slots = Default::default();
        self.len = 0;
        self.next = 0;
    }

    /// Number of protected reads currently windowed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window holds no reads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the windowed entries (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &ReadEntry<'env>> {
        let start = (self.next + self.cap - self.len) % self.cap;
        (0..self.len).filter_map(move |k| self.slots[(start + k) % self.cap].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::TVar;

    #[test]
    fn push_drops_oldest_beyond_cap() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let c = TVar::new(3u64);
        let mut w = Window::new(2);
        assert!(w.push(a.core(), 0).is_none());
        assert!(w.push(b.core(), 0).is_none());
        let dropped = w.push(c.core(), 0).expect("third push must evict");
        assert_eq!(dropped.core.id(), a.core().id());
        assert_eq!(w.len(), 2);
        let ids: Vec<usize> = w.iter().map(|e| e.core.id()).collect();
        assert_eq!(
            ids,
            vec![b.core().id(), c.core().id()],
            "oldest-first order"
        );
    }

    #[test]
    fn validate_detects_changed_entry() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        w.push(b.core(), 0);
        assert!(w.validate());
        a.store_atomic(9, 5);
        assert!(!w.validate());
        // a is the previous entry relative to b: the per-read check sees it.
        assert!(!w.validate_previous());
    }

    #[test]
    fn validate_previous_skips_newest() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        w.push(b.core(), 0);
        // Invalidate only the NEWEST entry: validate_previous ignores it.
        b.store_atomic(9, 5);
        assert!(w.validate_previous());
        assert!(!w.validate());
    }

    #[test]
    fn validate_ignores_evicted_entry() {
        // The essence of elasticity: changes to reads that slid out of the
        // window do not invalidate the transaction.
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let c = TVar::new(3u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        w.push(b.core(), 0);
        w.push(c.core(), 0); // evicts a
        a.store_atomic(9, 5);
        assert!(w.validate(), "evicted reads must be relaxed");
    }

    #[test]
    fn drain_into_moves_entries_to_read_set() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        w.push(b.core(), 0);
        let mut rs = ReadSet::new();
        w.drain_into(&mut rs);
        assert!(w.is_empty());
        assert_eq!(rs.len(), 2);
        assert!(rs.validate(None, |_| None));
    }

    #[test]
    fn moved_window_keeps_contents() {
        // Child frames park the parent's window by value (no allocation);
        // moving a window must preserve order and versions.
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        w.push(b.core(), 3);
        let saved = w; // move, as Frame::saved_window does
        let mut w = Window::new(2);
        w.push(b.core(), 9);
        w.clear();
        let w = saved;
        assert_eq!(w.len(), 2);
        let versions: Vec<u64> = w.iter().map(|e| e.version).collect();
        assert_eq!(versions, vec![0, 3]);
    }

    #[test]
    fn capacity_is_clamped() {
        let w = Window::new(1);
        assert_eq!(w.cap, 2);
        let w = Window::new(100);
        assert_eq!(w.cap, MAX_WINDOW);
    }

    #[test]
    fn larger_windows_cycle_correctly() {
        let vars: Vec<TVar<u64>> = (0..10u64).map(TVar::new).collect();
        let mut w = Window::new(4);
        let mut evictions = 0;
        for v in &vars {
            if w.push(v.core(), 0).is_some() {
                evictions += 1;
            }
        }
        assert_eq!(w.len(), 4);
        assert_eq!(evictions, 6);
        let ids: Vec<usize> = w.iter().map(|e| e.core.id()).collect();
        let expect: Vec<usize> = vars[6..].iter().map(|v| v.core().id()).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn locked_entry_fails_validation() {
        let a = TVar::new(1u64);
        let mut w = Window::new(2);
        w.push(a.core(), 0);
        assert!(a.core().lock().try_lock_at(0, 3));
        assert!(!w.validate());
        a.core().lock().unlock_to(0);
        assert!(w.validate());
    }
}

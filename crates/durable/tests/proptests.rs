//! Property battery for WAL record framing: round-trips, truncation at
//! every byte, and corruption fuzzing. The framing contract under test:
//! every byte sequence decodes to **an exact prefix of the original
//! records plus a typed error** — never to garbage, never to a record
//! that was not written.

use durable::record::{self, Record};
use proptest::prelude::*;

type Batch = Vec<(u64, Vec<(u64, u64)>)>;

fn encode_batch(batch: &Batch) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut boundaries = vec![0];
    for (version, writes) in batch {
        record::encode_into(&mut buf, *version, writes);
        boundaries.push(buf.len());
    }
    (buf, boundaries)
}

fn as_records(batch: &Batch) -> Vec<Record> {
    batch
        .iter()
        .map(|(version, writes)| Record {
            version: *version,
            writes: writes.clone(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encoding then stream-decoding any batch is the identity.
    #[test]
    fn record_stream_round_trips(
        batch in prop::collection::vec(
            (any::<u64>(), prop::collection::vec((any::<u64>(), any::<u64>()), 0..10)),
            1..10,
        )
    ) {
        let (buf, _) = encode_batch(&batch);
        let (records, clean, err) = record::decode_stream(&buf);
        prop_assert!(err.is_none());
        prop_assert_eq!(clean, buf.len());
        prop_assert_eq!(records, as_records(&batch));
    }

    /// Cutting the stream at every byte yields exactly the records whose
    /// final byte survived, plus a *truncation* verdict (never a
    /// corruption verdict, never a phantom record) off record
    /// boundaries.
    #[test]
    fn truncation_at_every_byte_is_prefix_plus_typed_tear(
        batch in prop::collection::vec(
            (any::<u64>(), prop::collection::vec((any::<u64>(), any::<u64>()), 0..8)),
            1..8,
        )
    ) {
        let (buf, boundaries) = encode_batch(&batch);
        let originals = as_records(&batch);
        for cut in 0..=buf.len() {
            let (records, clean, err) = record::decode_stream(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(records.len(), whole, "cut {}", cut);
            prop_assert_eq!(&records[..], &originals[..whole], "cut {}", cut);
            prop_assert_eq!(clean, boundaries[whole], "cut {}", cut);
            if boundaries.contains(&cut) {
                prop_assert!(err.is_none(), "cut {}: {:?}", cut, err);
            } else {
                let err = err.expect("off-boundary cut must error");
                prop_assert!(err.is_truncation(), "cut {}: {:?}", cut, err);
            }
        }
    }

    /// Any single corrupted byte produces an exact original-record
    /// prefix plus an error — the altered record never decodes, silently
    /// changed, into the stream.
    #[test]
    fn single_byte_corruption_never_decodes_to_garbage(
        batch in prop::collection::vec(
            (any::<u64>(), prop::collection::vec((any::<u64>(), any::<u64>()), 0..8)),
            1..8,
        ),
        pos_seed in any::<u64>(),
        xor in 1u64..256,
    ) {
        let (mut buf, _) = encode_batch(&batch);
        let originals = as_records(&batch);
        let pos = (pos_seed % buf.len() as u64) as usize;
        buf[pos] ^= u8::try_from(xor).expect("xor in 1..256");
        let (records, clean, err) = record::decode_stream(&buf);
        prop_assert!(err.is_some(), "flip at {} went undetected", pos);
        prop_assert!(records.len() < originals.len());
        prop_assert_eq!(&records[..], &originals[..records.len()], "flip at {}", pos);
        prop_assert!(clean <= pos, "clean prefix {} reaches past the flip at {}", clean, pos);
    }
}

//! Snapshot checkpoints: sstable-style sorted key/word tables that fold
//! the sealed WAL segment in and let the log be truncated.
//!
//! On-disk format:
//!
//! ```text
//! [magic: b"CRTSNAP1"] [crc32: u32 LE] [count: u32 LE]
//! ([key: u64 LE] [word: u64 LE]) * count      -- sorted by key
//! ```
//!
//! The crc covers everything after itself (count + entries). Snapshots
//! are written via the classic temp-file protocol — write
//! [`SNAPSHOT_TMP_FILE`], fsync, rename over [`SNAPSHOT_FILE`] — so a
//! crash leaves either the old snapshot or the new one, never a blend.
//!
//! # Checkpoint protocol
//!
//! [`checkpoint`] advances the store in idempotent phases; a crash
//! between (or inside) any two phases is repaired by the *next*
//! checkpoint or by [`crate::recover::recover`], because WAL records
//! carry absolute words — replaying a segment that a snapshot already
//! folded in rewrites the same values:
//!
//! 1. If `wal.old` exists (an earlier checkpoint died), fold it now.
//! 2. Seal the live log: `wal` → `wal.old` ([`crate::wal::Wal::seal`]).
//! 3. Fold `wal.old` into the snapshot (tmp + fsync + rename).
//! 4. Remove `wal.old` — the log bytes are now redundant.
// lint:allow — clock-blessed IO-path file (see xtask BLESSED_CLOCK_FILES).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::record::{self, crc32};
use crate::vfs::Vfs;
use crate::wal::{Wal, WalError, WAL_OLD_FILE};

/// On-disk name of the committed snapshot.
pub const SNAPSHOT_FILE: &str = "snapshot";
/// On-disk name of the in-flight snapshot (discarded on recovery).
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";
/// Format magic: "Composing Relaxed Transactions SNAPshot v1".
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CRTSNAP1";

/// Why a committed snapshot failed to load. Unlike a torn WAL tail this
/// is *not* gracefully degradable — the checkpoint replaced the log
/// bytes it folded in, so a corrupt snapshot means real data loss and
/// recovery reports it as a hard, typed error instead of guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than its header or promised entry table.
    Truncated {
        /// Bytes needed.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// The magic bytes are wrong — not a snapshot (or overwritten).
    BadMagic,
    /// The entry table does not match the stored checksum.
    BadChecksum {
        /// Checksum stored in the header.
        expect: u32,
        /// Checksum computed over the table.
        got: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated ({have} of {need} bytes)")
            }
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::BadChecksum { expect, got } => write!(
                f,
                "snapshot checksum mismatch (stored {expect:#010x}, computed {got:#010x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize `values` into snapshot bytes (sorted; `BTreeMap` iteration
/// order is already ascending by key).
#[must_use]
pub fn encode(values: &BTreeMap<u64, u64>) -> Vec<u8> {
    let count = u32::try_from(values.len()).expect("snapshot exceeds u32 entries");
    let mut table = Vec::with_capacity(4 + values.len() * 16);
    table.extend_from_slice(&count.to_le_bytes());
    for (&key, &word) in values {
        table.extend_from_slice(&key.to_le_bytes());
        table.extend_from_slice(&word.to_le_bytes());
    }
    let mut out = Vec::with_capacity(12 + table.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&crc32(&table).to_le_bytes());
    out.extend_from_slice(&table);
    out
}

/// Decode snapshot bytes back into a key→word table.
///
/// # Errors
/// A typed [`SnapshotError`]; never a partially filled table.
pub fn decode(bytes: &[u8]) -> Result<BTreeMap<u64, u64>, SnapshotError> {
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated {
            need: 16,
            have: bytes.len(),
        });
    }
    if &bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let expect = u32::from_le_bytes(bytes[8..12].try_into().expect("crc slice"));
    let table = &bytes[12..];
    let count = u32::from_le_bytes(table[0..4].try_into().expect("count slice")) as usize;
    let need = 16 + count * 16;
    if bytes.len() < need {
        return Err(SnapshotError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    let table = &bytes[12..need];
    let got = crc32(table);
    if got != expect {
        return Err(SnapshotError::BadChecksum { expect, got });
    }
    let mut values = BTreeMap::new();
    let mut at = 4;
    for _ in 0..count {
        let key = u64::from_le_bytes(table[at..at + 8].try_into().expect("key slice"));
        let word = u64::from_le_bytes(table[at + 8..at + 16].try_into().expect("word slice"));
        values.insert(key, word);
        at += 16;
    }
    Ok(values)
}

/// What a checkpoint did, for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointReport {
    /// WAL records folded into the snapshot.
    pub records_folded: u64,
    /// Entries in the snapshot after folding.
    pub snapshot_entries: usize,
    /// Whether an interrupted earlier checkpoint was completed first.
    pub repaired_previous: bool,
}

/// Errors surfaced by [`checkpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// The WAL refused to seal (poisoned).
    Wal(WalError),
    /// The existing committed snapshot is corrupt — checkpointing over
    /// it would launder data loss, so it is reported instead.
    Snapshot(SnapshotError),
    /// Filesystem failure while writing the new snapshot.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Wal(e) => write!(f, "checkpoint: {e}"),
            CheckpointError::Snapshot(e) => write!(f, "checkpoint: {e}"),
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Fold `wal.old` (if present) into the snapshot via the temp-file
/// protocol, then remove it. Phase 3+4 of the checkpoint; also phase 1
/// when repairing a predecessor's crash.
fn fold_sealed_segment(vfs: &Arc<dyn Vfs>) -> Result<u64, CheckpointError> {
    if !vfs.exists(WAL_OLD_FILE) {
        return Ok(0);
    }
    let mut values = if vfs.exists(SNAPSHOT_FILE) {
        decode(&vfs.read(SNAPSHOT_FILE).map_err(CheckpointError::Io)?)
            .map_err(CheckpointError::Snapshot)?
    } else {
        BTreeMap::new()
    };
    let bytes = vfs.read(WAL_OLD_FILE).map_err(CheckpointError::Io)?;
    // A sealed segment was fully fsynced before the rename, so a decode
    // error here is corruption, not a tear — but folding must still not
    // lose the clean prefix. Fold what decodes; recovery reports the
    // same diagnostic when it replays.
    let (records, _, _) = record::decode_stream(&bytes);
    let folded = records.len() as u64;
    for rec in &records {
        for &(key, word) in &rec.writes {
            values.insert(key, word);
        }
    }
    if vfs.exists(SNAPSHOT_TMP_FILE) {
        vfs.remove(SNAPSHOT_TMP_FILE).map_err(CheckpointError::Io)?;
    }
    vfs.append(SNAPSHOT_TMP_FILE, &encode(&values))
        .map_err(CheckpointError::Io)?;
    vfs.sync(SNAPSHOT_TMP_FILE).map_err(CheckpointError::Io)?;
    vfs.rename(SNAPSHOT_TMP_FILE, SNAPSHOT_FILE)
        .map_err(CheckpointError::Io)?;
    vfs.remove(WAL_OLD_FILE).map_err(CheckpointError::Io)?;
    Ok(folded)
}

/// Run one checkpoint: complete any interrupted predecessor, seal the
/// live log, fold the sealed segment into the snapshot, drop the
/// redundant log bytes. See the module docs for the crash-safety
/// argument phase by phase.
///
/// # Errors
/// [`CheckpointError`] — the store is left in a state `recover` accepts
/// regardless of where the failure hit.
pub fn checkpoint(wal: &Wal) -> Result<CheckpointReport, CheckpointError> {
    let vfs = wal.vfs();
    let mut report = CheckpointReport::default();
    // Phase 1: repair a predecessor that crashed between seal and fold.
    if vfs.exists(WAL_OLD_FILE) {
        report.records_folded += fold_sealed_segment(vfs)?;
        report.repaired_previous = true;
    }
    // Phase 2: seal the live segment (no-op on an empty log).
    if wal.seal().map_err(CheckpointError::Wal)? {
        // Phases 3-4: fold it and drop it.
        report.records_folded += fold_sealed_segment(vfs)?;
    }
    if vfs.exists(SNAPSHOT_FILE) {
        let snap = decode(&vfs.read(SNAPSHOT_FILE).map_err(CheckpointError::Io)?)
            .map_err(CheckpointError::Snapshot)?;
        report.snapshot_entries = snap.len();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use crate::wal::WAL_FILE;

    #[test]
    fn snapshot_bytes_round_trip() {
        let values: BTreeMap<u64, u64> = (0..100u64).map(|k| (k, k * 7)).collect();
        assert_eq!(decode(&encode(&values)).unwrap(), values);
        assert_eq!(decode(&encode(&BTreeMap::new())).unwrap(), BTreeMap::new());
    }

    #[test]
    fn snapshot_corruption_is_typed() {
        let values: BTreeMap<u64, u64> = [(1, 2), (3, 4)].into();
        let bytes = encode(&values);
        assert!(matches!(
            decode(&bytes[..10]),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(SnapshotError::BadMagic)));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::BadChecksum { .. })
        ));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn checkpoint_folds_log_and_truncates_it() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone() as Arc<dyn Vfs>);
        wal.append(1, &[(10, 1), (11, 1)]).unwrap();
        wal.append(2, &[(10, 2)]).unwrap();
        let report = checkpoint(&wal).unwrap();
        assert_eq!(report.records_folded, 2);
        assert_eq!(report.snapshot_entries, 2);
        assert!(!report.repaired_previous);
        assert!(!mem.exists(WAL_FILE) && !mem.exists(WAL_OLD_FILE));
        let snap = decode(&mem.read(SNAPSHOT_FILE).unwrap()).unwrap();
        assert_eq!(snap, [(10u64, 2u64), (11, 1)].into());
        // Later writes land in a fresh live segment and fold on top.
        wal.append(3, &[(11, 9)]).unwrap();
        checkpoint(&wal).unwrap();
        let snap = decode(&mem.read(SNAPSHOT_FILE).unwrap()).unwrap();
        assert_eq!(snap, [(10u64, 2u64), (11, 9)].into());
    }

    #[test]
    fn checkpoint_repairs_a_predecessor_that_died_after_sealing() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone() as Arc<dyn Vfs>);
        wal.append(1, &[(1, 1)]).unwrap();
        // Simulate a predecessor crash between seal and fold: the live
        // segment has been renamed but no snapshot written.
        wal.seal().unwrap();
        let wal2 = Wal::open(mem.clone() as Arc<dyn Vfs>);
        let report = checkpoint(&wal2).unwrap();
        assert!(report.repaired_previous);
        assert_eq!(report.records_folded, 1);
        assert_eq!(
            decode(&mem.read(SNAPSHOT_FILE).unwrap()).unwrap(),
            [(1u64, 1u64)].into()
        );
    }
}

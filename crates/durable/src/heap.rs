//! The bridge from STM commits to the WAL: stable keys and the
//! [`CommitHook`] implementation.
//!
//! A `TVarCore`'s id is its address — unique while the process lives,
//! meaningless after a restart. [`DurableHeap`] maps core ids to
//! caller-chosen **stable keys** (`u64`), which is what WAL records and
//! snapshots store. [`DurableHook`] consults that map inside
//! `on_commit`: registered locations are logged under their stable key,
//! unregistered locations are skipped — so durable and transient state
//! can share one transaction, and only the durable part pays for the
//! fsync.
//!
//! `on_commit` is infallible by contract (stm-core fires it past the
//! point of no return). When the WAL is poisoned the hook therefore
//! *degrades itself*: the commit proceeds in memory, the append is
//! dropped, and the original IO failure stays queryable via
//! [`DurableHook::io_error`] for the harness/CLI to surface.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use stm_core::hook::{CommitHook, WriteRecord};
use stm_core::tvar::TVarCore;

use crate::wal::Wal;

/// Registry of transactional locations that should survive a restart:
/// core id (address-based, restart-unstable) → stable key.
#[derive(Debug, Default)]
pub struct DurableHeap {
    keys: RwLock<HashMap<usize, u64>>,
    identity: bool,
}

impl DurableHeap {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry in **identity mode**: every core is implicitly
    /// registered under its own id. Keys are address-based and therefore
    /// *not* restart-stable — this mode exists for measurement (the
    /// bench's `--durable` axis logs every committed write at full fsync
    /// cost without having to name the TVars hidden inside a workload's
    /// data structures), not for state that must be recovered by name.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            keys: RwLock::new(HashMap::new()),
            identity: true,
        }
    }

    /// Whether this registry is in identity mode.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Register `core` under `key`. Registering while transactions are
    /// in flight is allowed (commits observe the map at hook time);
    /// re-registering a core replaces its key.
    pub fn register(&self, key: u64, core: &TVarCore) {
        self.keys
            .write()
            .expect("durable heap lock")
            .insert(core.id(), key);
    }

    /// The stable key of `core_id`, if registered. In identity mode
    /// every core maps to its own id.
    #[must_use]
    pub fn key_of(&self, core_id: usize) -> Option<u64> {
        if self.identity {
            return Some(core_id as u64);
        }
        self.keys
            .read()
            .expect("durable heap lock")
            .get(&core_id)
            .copied()
    }

    /// Number of registered locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.read().expect("durable heap lock").len()
    }

    /// Whether no locations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The [`CommitHook`] that makes registered writes durable by appending
/// them to a group-committed [`Wal`].
#[derive(Debug)]
pub struct DurableHook {
    heap: Arc<DurableHeap>,
    wal: Arc<Wal>,
}

impl DurableHook {
    /// Log registered writes from `heap` to `wal`.
    pub fn new(heap: Arc<DurableHeap>, wal: Arc<Wal>) -> Self {
        Self { heap, wal }
    }

    /// The key registry this hook consults.
    #[must_use]
    pub fn heap(&self) -> &Arc<DurableHeap> {
        &self.heap
    }

    /// The log this hook appends to.
    #[must_use]
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The first IO failure, if durability has been lost (the WAL is
    /// poisoned and commits are proceeding memory-only).
    #[must_use]
    pub fn io_error(&self) -> Option<String> {
        self.wal.io_error()
    }
}

impl CommitHook for DurableHook {
    fn on_commit(&self, record: &WriteRecord<'_>) {
        // Hot-path note: this path only runs with durability *on*, where
        // the fsync dominates; the hook-off config stays zero-alloc.
        let mut writes = Vec::with_capacity(record.len());
        if self.heap.identity {
            record.for_each(&mut |core_id, word| writes.push((core_id as u64, word)));
        } else {
            let keys = self.heap.keys.read().expect("durable heap lock");
            record.for_each(&mut |core_id, word| {
                if let Some(&key) = keys.get(&core_id) {
                    writes.push((key, word));
                }
            });
        }
        if writes.is_empty() {
            return;
        }
        // on_commit is infallible: a poisoned WAL degrades durability
        // (queryable via io_error), it does not unwind a commit that the
        // backend has already validated.
        let _ = self.wal.append(record.version(), &writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;
    use crate::vfs::{MemVfs, Vfs};
    use crate::wal::WAL_FILE;
    use stm_core::tvar::TVar;

    #[test]
    fn hook_logs_registered_cores_under_stable_keys_and_skips_others() {
        let mem = Arc::new(MemVfs::new());
        let heap = Arc::new(DurableHeap::new());
        let wal = Arc::new(Wal::open(mem.clone() as Arc<dyn Vfs>));
        let hook = DurableHook::new(Arc::clone(&heap), wal);

        let durable_var = TVar::new(0u64);
        let transient_var = TVar::new(0u64);
        heap.register(77, durable_var.core());

        let writes: Vec<(usize, u64)> = vec![
            (durable_var.core().id(), 41),
            (transient_var.core().id(), 999),
        ];
        let iter = |f: &mut dyn FnMut(usize, u64)| {
            for &(id, w) in &writes {
                f(id, w);
            }
        };
        hook.on_commit(&WriteRecord::new(12, writes.len(), &iter));

        let (records, _, err) = record::decode_stream(&mem.read(WAL_FILE).unwrap());
        assert!(err.is_none());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].version, 12);
        assert_eq!(records[0].writes, vec![(77, 41)], "transient core skipped");
        assert!(hook.io_error().is_none());
    }

    #[test]
    fn identity_heap_logs_every_core_under_its_own_id() {
        let mem = Arc::new(MemVfs::new());
        let heap = Arc::new(DurableHeap::identity());
        assert!(heap.is_identity());
        let wal = Arc::new(Wal::open(mem.clone() as Arc<dyn Vfs>));
        let hook = DurableHook::new(Arc::clone(&heap), wal);

        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        assert_eq!(heap.key_of(a.core().id()), Some(a.core().id() as u64));

        let writes: Vec<(usize, u64)> = vec![(a.core().id(), 1), (b.core().id(), 2)];
        let iter = |f: &mut dyn FnMut(usize, u64)| {
            for &(id, w) in &writes {
                f(id, w);
            }
        };
        hook.on_commit(&WriteRecord::new(3, writes.len(), &iter));

        let (records, _, err) = record::decode_stream(&mem.read(WAL_FILE).unwrap());
        assert!(err.is_none());
        assert_eq!(
            records[0].writes,
            vec![(a.core().id() as u64, 1), (b.core().id() as u64, 2)],
            "no registration needed in identity mode"
        );
    }

    #[test]
    fn hook_with_no_registered_writes_touches_no_file() {
        let mem = Arc::new(MemVfs::new());
        let heap = Arc::new(DurableHeap::new());
        let wal = Arc::new(Wal::open(mem.clone() as Arc<dyn Vfs>));
        let hook = DurableHook::new(heap, wal);
        let var = TVar::new(0u64);
        let writes = vec![(var.core().id(), 5)];
        let iter = |f: &mut dyn FnMut(usize, u64)| {
            for &(id, w) in &writes {
                f(id, w);
            }
        };
        hook.on_commit(&WriteRecord::new(1, writes.len(), &iter));
        assert!(!mem.exists(WAL_FILE));
    }
}

//! Crash recovery: rebuild the durable heap image from whatever bytes
//! survived, repair the store in place, and *say what happened*.
//!
//! Recovery is deliberately boring — four idempotent steps, each safe to
//! re-crash inside (a second recovery over the result reaches the same
//! state):
//!
//! 1. Discard `snapshot.tmp` — an unfinished checkpoint is noise; the
//!    committed `snapshot` plus the logs it had not yet folded hold
//!    everything.
//! 2. Load `snapshot` if present. A *corrupt committed snapshot* is a
//!    hard, typed error ([`RecoverError::CorruptSnapshot`]) — its bytes
//!    replaced log records that are gone, so guessing would silently
//!    resurrect or lose data.
//! 3. Replay `wal.old` (a sealed segment an interrupted checkpoint left
//!    behind), then `wal`, in record order. A torn or corrupt tail ends
//!    replay: the clean prefix is applied, the tail is truncated off the
//!    file, and a diagnostic note records the byte offset and whether it
//!    looked like a tear (crash mid-append) or corruption (checksum).
//!    Nothing past the first bad frame is ever applied — a record is
//!    only replayed when every byte of it was fsynced.
//! 4. Return the rebuilt key→word image plus the diagnostics. The caller
//!    installs the image into its `TVar`s (see `tests/durability.rs`)
//!    and resumes appending to the now-clean `wal`.
// lint:allow — clock-blessed IO-path file (see xtask BLESSED_CLOCK_FILES).

use std::collections::BTreeMap;
use std::fmt;
use std::io;

use crate::record;
use crate::snapshot::{self, SnapshotError, SNAPSHOT_FILE, SNAPSHOT_TMP_FILE};
use crate::vfs::Vfs;
use crate::wal::{WAL_FILE, WAL_OLD_FILE};

/// The outcome of a successful recovery.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The rebuilt durable image: stable key → last committed word.
    pub values: BTreeMap<u64, u64>,
    /// Entries that came from the snapshot (before log replay).
    pub snapshot_entries: usize,
    /// WAL records replayed (across `wal.old` and `wal`).
    pub records_applied: u64,
    /// Highest advisory commit version seen in replayed records.
    pub last_version: u64,
    /// Human-readable diagnostics: discarded temp files, truncated
    /// tails, corruption verdicts. Empty means a perfectly clean start.
    pub notes: Vec<String>,
}

/// Why recovery could not produce a trustworthy image.
#[derive(Debug)]
pub enum RecoverError {
    /// The committed snapshot is corrupt. The log records it folded in
    /// were deleted, so the pre-crash state is not reconstructible —
    /// reported, never guessed around.
    CorruptSnapshot(SnapshotError),
    /// Filesystem failure while reading or repairing the store.
    Io(io::Error),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::CorruptSnapshot(e) => {
                write!(f, "recovery: committed snapshot unusable: {e}")
            }
            RecoverError::Io(e) => write!(f, "recovery io: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Replay one log file into `out`, truncating a bad tail in place.
fn replay_log(vfs: &dyn Vfs, name: &str, out: &mut Recovery) -> Result<(), RecoverError> {
    if !vfs.exists(name) {
        return Ok(());
    }
    let bytes = vfs.read(name).map_err(RecoverError::Io)?;
    let (records, clean, err) = record::decode_stream(&bytes);
    for rec in &records {
        for &(key, word) in &rec.writes {
            out.values.insert(key, word);
        }
        out.last_version = out.last_version.max(rec.version);
    }
    out.records_applied += records.len() as u64;
    if let Some(err) = err {
        let kind = if err.is_truncation() {
            "torn tail"
        } else {
            "corrupt record"
        };
        out.notes.push(format!(
            "{name}: {kind} at byte {clean} ({err}); truncated {lost} byte(s), \
             kept {n} record(s)",
            lost = bytes.len() - clean,
            n = records.len(),
        ));
        vfs.truncate(name, clean as u64).map_err(RecoverError::Io)?;
    }
    Ok(())
}

/// Rebuild the durable image from `vfs`, repairing torn tails and
/// discarding unfinished checkpoints along the way. Idempotent: running
/// it again (including after a crash mid-recovery) returns the same
/// image.
///
/// # Errors
/// [`RecoverError::CorruptSnapshot`] when the committed snapshot fails
/// validation (unrecoverable by design — see type docs);
/// [`RecoverError::Io`] on filesystem failure.
pub fn recover(vfs: &dyn Vfs) -> Result<Recovery, RecoverError> {
    let mut out = Recovery::default();

    // Step 1: an in-flight checkpoint that never renamed is garbage.
    if vfs.exists(SNAPSHOT_TMP_FILE) {
        vfs.remove(SNAPSHOT_TMP_FILE).map_err(RecoverError::Io)?;
        out.notes.push(format!(
            "{SNAPSHOT_TMP_FILE}: discarded incomplete checkpoint"
        ));
    }

    // Step 2: the committed snapshot is the replay base.
    if vfs.exists(SNAPSHOT_FILE) {
        let bytes = vfs.read(SNAPSHOT_FILE).map_err(RecoverError::Io)?;
        out.values = snapshot::decode(&bytes).map_err(RecoverError::CorruptSnapshot)?;
        out.snapshot_entries = out.values.len();
    }

    // Step 3: sealed-but-unfolded segment first, then the live log —
    // the same order the bytes were written in.
    if vfs.exists(WAL_OLD_FILE) {
        out.notes.push(format!(
            "{WAL_OLD_FILE}: replaying segment left by an interrupted checkpoint"
        ));
    }
    replay_log(vfs, WAL_OLD_FILE, &mut out)?;
    replay_log(vfs, WAL_FILE, &mut out)?;

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use crate::wal::Wal;
    use std::sync::Arc;

    #[test]
    fn empty_store_recovers_to_empty_image_with_no_notes() {
        let rec = recover(&MemVfs::new()).unwrap();
        assert!(rec.values.is_empty() && rec.notes.is_empty());
        assert_eq!(rec.records_applied, 0);
    }

    #[test]
    fn recovery_replays_snapshot_then_both_log_segments_in_order() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone() as Arc<dyn Vfs>);
        wal.append(1, &[(1, 10), (2, 20)]).unwrap();
        snapshot::checkpoint(&wal).unwrap();
        wal.append(2, &[(2, 21)]).unwrap();
        wal.seal().unwrap(); // leaves wal.old, as a dying checkpoint would
        wal.append(3, &[(1, 12)]).unwrap();

        let rec = recover(mem.as_ref()).unwrap();
        assert_eq!(rec.values, [(1u64, 12u64), (2, 21)].into());
        assert_eq!(rec.snapshot_entries, 2);
        assert_eq!(rec.records_applied, 2);
        assert_eq!(rec.last_version, 3);
        assert!(rec
            .notes
            .iter()
            .any(|n| n.contains("interrupted checkpoint")));
    }

    #[test]
    fn torn_tail_is_truncated_reported_and_idempotent() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone() as Arc<dyn Vfs>);
        wal.append(1, &[(1, 10)]).unwrap();
        let clean_len = mem.durable_bytes(WAL_FILE).len();
        wal.append(2, &[(2, 20)]).unwrap();
        // Tear the second record in half.
        mem.truncate(WAL_FILE, clean_len as u64 + 5).unwrap();

        let rec = recover(mem.as_ref()).unwrap();
        assert_eq!(rec.values, [(1u64, 10u64)].into(), "clean prefix only");
        assert!(rec.notes.iter().any(|n| n.contains("torn tail")));
        assert_eq!(
            mem.read(WAL_FILE).unwrap().len(),
            clean_len,
            "tail physically truncated"
        );
        // Idempotent: a second recovery (double crash) is clean.
        let rec2 = recover(mem.as_ref()).unwrap();
        assert_eq!(rec2.values, rec.values);
        assert!(rec2.notes.is_empty());
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_typed_error() {
        let mem = MemVfs::new();
        mem.append(SNAPSHOT_FILE, b"CRTSNAP1garbage-after-magic")
            .unwrap();
        mem.sync(SNAPSHOT_FILE).unwrap();
        let err = recover(&mem).unwrap_err();
        assert!(matches!(err, RecoverError::CorruptSnapshot(_)), "{err}");
    }

    #[test]
    fn incomplete_checkpoint_tmp_is_discarded_with_a_note() {
        let mem = MemVfs::new();
        mem.append(SNAPSHOT_TMP_FILE, b"half-written").unwrap();
        mem.sync(SNAPSHOT_TMP_FILE).unwrap();
        let rec = recover(&mem).unwrap();
        assert!(!mem.exists(SNAPSHOT_TMP_FILE));
        assert!(rec
            .notes
            .iter()
            .any(|n| n.contains("incomplete checkpoint")));
    }
}

//! The facade that ties the layers together: open → recover → hook →
//! append → checkpoint, plus the optional background snapshotter.
//!
//! ```
//! use std::sync::Arc;
//! use durable::{DurableStore, MemVfs, Vfs};
//! use stm_core::tvar::TVar;
//!
//! let vfs = Arc::new(MemVfs::new()) as Arc<dyn Vfs>;
//! let (store, recovered) = DurableStore::open(vfs).unwrap();
//! let balance = TVar::new(0u64);
//! store.heap().register(1, balance.core());
//! if let Some(&w) = recovered.values.get(&1) {
//!     balance.store_atomic(w, recovered.last_version);
//! }
//! // … build an StmConfig::default().with_commit_hook(store.hook()) …
//! ```
// lint:allow — clock-blessed IO-path file (see xtask BLESSED_CLOCK_FILES).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use stm_core::hook::CommitHook;

use crate::heap::{DurableHeap, DurableHook};
use crate::recover::{self, Recovery};
use crate::snapshot::{self, CheckpointError, CheckpointReport};
use crate::vfs::Vfs;
use crate::wal::Wal;

/// Shared stop-flag between the store and its snapshotter thread.
struct SnapCtl {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// A durable store: recovery at open, a group-committed WAL behind a
/// [`CommitHook`], and checkpoints on demand or from a background
/// snapshotter.
pub struct DurableStore {
    heap: Arc<DurableHeap>,
    wal: Arc<Wal>,
    hook: Arc<DurableHook>,
    snapshotter: Option<(std::thread::JoinHandle<()>, Arc<SnapCtl>)>,
}

impl DurableStore {
    /// Open the store at `vfs`: run [`recover::recover`] (repairing torn
    /// tails and unfinished checkpoints), then stand up the WAL and
    /// hook. Returns the store and the recovered image — the caller
    /// registers its `TVar`s and installs the image into them.
    ///
    /// # Errors
    /// Propagates [`recover::RecoverError`] (corrupt committed snapshot,
    /// filesystem failure).
    pub fn open(vfs: Arc<dyn Vfs>) -> Result<(Self, Recovery), recover::RecoverError> {
        Self::open_with_heap(vfs, DurableHeap::new())
    }

    /// Like [`open`](Self::open), but with the heap in **identity mode**:
    /// every committed write is logged under its core id without
    /// registration. Measurement-grade durability for the bench's
    /// `--durable` axis (see [`DurableHeap::identity`]) — the logged keys
    /// are not restart-stable names.
    ///
    /// # Errors
    /// Propagates [`recover::RecoverError`], exactly like `open`.
    pub fn open_identity(vfs: Arc<dyn Vfs>) -> Result<(Self, Recovery), recover::RecoverError> {
        Self::open_with_heap(vfs, DurableHeap::identity())
    }

    fn open_with_heap(
        vfs: Arc<dyn Vfs>,
        heap: DurableHeap,
    ) -> Result<(Self, Recovery), recover::RecoverError> {
        let recovery = recover::recover(vfs.as_ref())?;
        let heap = Arc::new(heap);
        let wal = Arc::new(Wal::open(vfs));
        let hook = Arc::new(DurableHook::new(Arc::clone(&heap), Arc::clone(&wal)));
        Ok((
            Self {
                heap,
                wal,
                hook,
                snapshotter: None,
            },
            recovery,
        ))
    }

    /// The stable-key registry — register every `TVar` that must survive
    /// a restart.
    #[must_use]
    pub fn heap(&self) -> &Arc<DurableHeap> {
        &self.heap
    }

    /// The commit hook to install via `StmConfig::with_commit_hook`.
    #[must_use]
    pub fn hook(&self) -> Arc<dyn CommitHook> {
        Arc::clone(&self.hook) as Arc<dyn CommitHook>
    }

    /// The underlying log (stats, flush, poisoning state).
    #[must_use]
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// The first IO failure, if durability has degraded to memory-only.
    #[must_use]
    pub fn io_error(&self) -> Option<String> {
        self.wal.io_error()
    }

    /// Run one checkpoint now (see [`snapshot::checkpoint`]).
    ///
    /// # Errors
    /// Propagates [`CheckpointError`].
    pub fn checkpoint(&self) -> Result<CheckpointReport, CheckpointError> {
        snapshot::checkpoint(&self.wal)
    }

    /// Start the background snapshotter: every `poll` it checks whether
    /// the live segment has grown past `threshold_bytes` and checkpoints
    /// if so. Stops (after finishing any in-flight checkpoint) when the
    /// store is dropped. A checkpoint failure stops the thread — the
    /// WAL simply keeps growing, and the error surfaces on the next
    /// explicit [`checkpoint`](Self::checkpoint) or at recovery.
    pub fn start_snapshotter(&mut self, threshold_bytes: u64, poll: Duration) {
        if self.snapshotter.is_some() {
            return;
        }
        let ctl = Arc::new(SnapCtl {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_ctl = Arc::clone(&ctl);
        let wal = Arc::clone(&self.wal);
        let handle = std::thread::spawn(move || loop {
            {
                let mut stop = thread_ctl.stop.lock();
                if !*stop {
                    let _ = thread_ctl.wake.wait_for(&mut stop, poll);
                }
                if *stop {
                    return;
                }
            }
            if wal.stats().bytes >= threshold_bytes && snapshot::checkpoint(&wal).is_err() {
                return;
            }
        });
        self.snapshotter = Some((handle, ctl));
    }
}

impl Drop for DurableStore {
    fn drop(&mut self) {
        if let Some((handle, ctl)) = self.snapshotter.take() {
            *ctl.stop.lock() = true;
            ctl.wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("heap", &self.heap.len())
            .field("wal", &self.wal)
            .field("snapshotter", &self.snapshotter.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SNAPSHOT_FILE;
    use crate::vfs::MemVfs;
    use crate::wal::WAL_FILE;
    use stm_core::hook::WriteRecord;
    use stm_core::tvar::TVar;

    fn commit_through_hook(store: &DurableStore, writes: &[(usize, u64)], version: u64) {
        let iter = |f: &mut dyn FnMut(usize, u64)| {
            for &(id, w) in writes {
                f(id, w);
            }
        };
        store
            .hook()
            .on_commit(&WriteRecord::new(version, writes.len(), &iter));
    }

    #[test]
    fn open_commit_crash_reopen_round_trips_registered_state() {
        let mem = Arc::new(MemVfs::new());
        let var = TVar::new(0u64);
        {
            let (store, recovered) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
            assert!(recovered.values.is_empty());
            store.heap().register(9, var.core());
            commit_through_hook(&store, &[(var.core().id(), 1234)], 42);
        }
        mem.crash();
        let (store, recovered) = DurableStore::open(mem as Arc<dyn Vfs>).unwrap();
        assert_eq!(recovered.values, [(9u64, 1234u64)].into());
        assert_eq!(recovered.last_version, 42);
        assert!(store.io_error().is_none());
    }

    #[test]
    fn background_snapshotter_checkpoints_past_the_threshold() {
        let mem = Arc::new(MemVfs::new());
        let var = TVar::new(0u64);
        let (mut store, _) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
        store.heap().register(1, var.core());
        store.start_snapshotter(1, Duration::from_millis(1));
        commit_through_hook(&store, &[(var.core().id(), 7)], 1);
        // The threshold is 1 byte, so the snapshotter must fold the
        // record promptly; bounded spin rather than a sleep-and-hope.
        let mut ok = false;
        for _ in 0..1000 {
            if mem.exists(SNAPSHOT_FILE) && !mem.exists(WAL_FILE) {
                ok = true;
                break;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(ok, "snapshotter never checkpointed");
        drop(store); // joins the thread cleanly
        let rec = recover::recover(mem.as_ref()).unwrap();
        assert_eq!(rec.values, [(1u64, 7u64)].into());
    }
}

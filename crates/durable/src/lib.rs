//! Opt-in durability for the STM registry, behind the
//! [`stm_core::CommitHook`] seam.
//!
//! The paper's backends are in-memory by design; this crate adds the
//! robustness layer the harness uses to prove crash-consistency claims:
//!
//! * [`wal`] — a **group-committed write-ahead log**: concurrent
//!   committers stage records under a mutex, one leader fsyncs the whole
//!   batch, everyone returns only once *their* record is durable. A
//!   failed fsync sticky-poisons the log so durable state is always a
//!   prefix of committed history.
//! * [`record`] — length-prefixed, CRC-checksummed record framing with
//!   typed decode errors: a torn tail is distinguishable from bit-rot,
//!   and no byte sequence ever decodes to garbage.
//! * [`snapshot`] — sstable-style checkpoints (sorted key/word tables)
//!   written via tmp+fsync+rename, folding the sealed log segment in so
//!   the log stays short; every phase is crash-repairable.
//! * [`recover()`] — replay snapshot + `wal.old` + `wal`, truncating and
//!   reporting bad tails; idempotent under double crash; a corrupt
//!   *committed* snapshot is a hard typed error, never a guess.
//! * [`heap`] — [`DurableHeap`] maps address-based core ids to stable
//!   keys; [`DurableHook`] implements `CommitHook` by logging registered
//!   writes (and only those) to the WAL.
//! * [`vfs`] / [`fault`] — the IO seam that makes all of the above
//!   testable: [`MemVfs`] tracks fsynced-vs-pending bytes and can
//!   [`MemVfs::crash`]; [`FaultVfs`] injects scripted torn writes, fsync
//!   failures and bit flips at exact operation counts. The crash-point
//!   battery in `tests/durability.rs` recovers from *every prefix* of a
//!   real WAL and checks the image equals the longest clean record
//!   prefix.
//!
//! Entry point: [`DurableStore`] (open → recover → register → hook →
//! checkpoint). Hook-off configurations pay nothing — the seam is a
//! predictable `None` branch in each backend's commit path, covered by
//! the zero-alloc pin.

#![forbid(unsafe_code)]

pub mod fault;
pub mod heap;
pub mod record;
pub mod recover;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use fault::{BitFlip, FaultPlan, FaultVfs, TornAppend};
pub use heap::{DurableHeap, DurableHook};
pub use record::{Record, RecordError};
pub use recover::{recover, RecoverError, Recovery};
pub use snapshot::{checkpoint, CheckpointError, CheckpointReport, SnapshotError};
pub use store::DurableStore;
pub use vfs::{MemVfs, StdVfs, Vfs};
pub use wal::{Wal, WalError, WalStats};

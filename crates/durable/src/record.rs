//! WAL record framing: length-prefixed, checksummed, typed failures.
//!
//! One record per committed update transaction:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload]
//! payload = [version: u64 LE] [count: u32 LE] ([key: u64 LE] [word: u64 LE]) * count
//! ```
//!
//! `len` is the payload length; `crc32` covers the payload only. The
//! decoder never returns garbage: every byte sequence decodes to either
//! an exact record or a typed [`RecordError`] saying *why* the bytes are
//! unusable — a torn tail ([`RecordError::TruncatedHeader`] /
//! [`RecordError::TruncatedBody`]) is distinguishable from corruption
//! ([`RecordError::BadChecksum`] / [`RecordError::BadLength`] /
//! [`RecordError::BadCount`]), and recovery reports the distinction.

use std::fmt;

/// Byte length of the `[len][crc]` frame header.
pub const HEADER_LEN: usize = 8;
/// Payload bytes before the key/word pairs (`version` + `count`).
pub const PAYLOAD_FIXED_LEN: usize = 12;
/// Bytes per `(key, word)` pair.
pub const PAIR_LEN: usize = 16;
/// Upper bound on a single record's payload — rejects absurd lengths
/// produced by corruption before any allocation happens (1 MiB covers
/// ~65k writes per transaction, far beyond any workload here).
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// A decoded WAL record: the advisory commit version plus the `(stable
/// key, word)` pairs the transaction wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Advisory commit version (global-clock write version; 0 for the
    /// boost backend, which never ticks the clock).
    pub version: u64,
    /// `(stable key, value)` pairs, in write-set order.
    pub writes: Vec<(u64, u64)>,
}

/// Why a byte sequence failed to decode as a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer than [`HEADER_LEN`] bytes remain — a torn tail mid-header.
    TruncatedHeader {
        /// Bytes actually available.
        have: usize,
    },
    /// The header promises more payload bytes than remain — a torn tail
    /// mid-payload.
    TruncatedBody {
        /// Bytes the header promised.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Payload bytes do not match the header checksum — corruption.
    BadChecksum {
        /// Checksum stored in the header.
        expect: u32,
        /// Checksum computed over the payload.
        got: u32,
    },
    /// The length field is structurally impossible (too small for the
    /// fixed payload prefix, not pair-aligned, or over
    /// [`MAX_PAYLOAD_LEN`]) — corruption.
    BadLength {
        /// The offending length field.
        len: u32,
    },
    /// The `count` field disagrees with the payload length — corruption
    /// that survived the length check (checksum normally catches this
    /// first; kept as a distinct, defence-in-depth verdict).
    BadCount {
        /// The offending count field.
        count: u32,
        /// The payload length it contradicts.
        len: u32,
    },
}

impl RecordError {
    /// Whether this error is consistent with a clean torn tail (crash
    /// mid-append) rather than in-place corruption.
    #[must_use]
    pub fn is_truncation(&self) -> bool {
        matches!(
            self,
            RecordError::TruncatedHeader { .. } | RecordError::TruncatedBody { .. }
        )
    }
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::TruncatedHeader { have } => {
                write!(f, "torn record header ({have} of {HEADER_LEN} bytes)")
            }
            RecordError::TruncatedBody { need, have } => {
                write!(f, "torn record body ({have} of {need} bytes)")
            }
            RecordError::BadChecksum { expect, got } => {
                write!(
                    f,
                    "record checksum mismatch (stored {expect:#010x}, computed {got:#010x})"
                )
            }
            RecordError::BadLength { len } => {
                write!(f, "impossible record length {len}")
            }
            RecordError::BadCount { count, len } => {
                write!(f, "record count {count} contradicts payload length {len}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// CRC-32 (IEEE 802.3, reflected), table-driven with a compile-time
/// table. Hand-rolled because the build is offline — no `crc32fast`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    !crc
}

/// Append one encoded record for `(version, writes)` onto `buf`.
pub fn encode_into(buf: &mut Vec<u8>, version: u64, writes: &[(u64, u64)]) {
    let count = u32::try_from(writes.len()).expect("write set exceeds u32");
    let payload_len = PAYLOAD_FIXED_LEN + PAIR_LEN * writes.len();
    buf.reserve(HEADER_LEN + payload_len);
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; HEADER_LEN]);
    let payload_at = buf.len();
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    for &(key, word) in writes {
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&word.to_le_bytes());
    }
    let crc = crc32(&buf[payload_at..]);
    let len = u32::try_from(payload_len).expect("payload exceeds u32");
    buf[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
    buf[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("u32 slice"))
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("u64 slice"))
}

/// Decode the record at the front of `bytes`; on success also return the
/// total number of bytes the record occupied.
///
/// # Errors
/// A typed [`RecordError`] describing exactly why the front of `bytes`
/// is not a record — never a partially filled [`Record`].
pub fn decode(bytes: &[u8]) -> Result<(Record, usize), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::TruncatedHeader { have: bytes.len() });
    }
    let len = read_u32(&bytes[0..4]);
    let stored_crc = read_u32(&bytes[4..8]);
    if len < PAYLOAD_FIXED_LEN as u32
        || len > MAX_PAYLOAD_LEN
        || !(len as usize - PAYLOAD_FIXED_LEN).is_multiple_of(PAIR_LEN)
    {
        return Err(RecordError::BadLength { len });
    }
    let need = len as usize;
    let have = bytes.len() - HEADER_LEN;
    if have < need {
        return Err(RecordError::TruncatedBody { need, have });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + need];
    let got = crc32(payload);
    if got != stored_crc {
        return Err(RecordError::BadChecksum {
            expect: stored_crc,
            got,
        });
    }
    let version = read_u64(&payload[0..8]);
    let count = read_u32(&payload[8..12]);
    if count as usize != (need - PAYLOAD_FIXED_LEN) / PAIR_LEN {
        return Err(RecordError::BadCount { count, len });
    }
    let mut writes = Vec::with_capacity(count as usize);
    let mut at = PAYLOAD_FIXED_LEN;
    for _ in 0..count {
        writes.push((read_u64(&payload[at..]), read_u64(&payload[at + 8..])));
        at += PAIR_LEN;
    }
    Ok((Record { version, writes }, HEADER_LEN + need))
}

/// Decode as many whole records as `bytes` holds, front to back.
/// Returns the records, the length of the clean prefix they occupy, and
/// the error that stopped decoding (`None` when `bytes` ends exactly on
/// a record boundary).
#[must_use]
pub fn decode_stream(bytes: &[u8]) -> (Vec<Record>, usize, Option<RecordError>) {
    let mut records = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match decode(&bytes[at..]) {
            Ok((record, used)) => {
                records.push(record);
                at += used;
            }
            Err(err) => return (records, at, Some(err)),
        }
    }
    (records, at, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = Vec::new();
        encode_into(&mut buf, 7, &[(1, 10), (2, 20)]);
        encode_into(&mut buf, 9, &[]);
        let (records, clean, err) = decode_stream(&buf);
        assert!(err.is_none());
        assert_eq!(clean, buf.len());
        assert_eq!(
            records,
            vec![
                Record {
                    version: 7,
                    writes: vec![(1, 10), (2, 20)]
                },
                Record {
                    version: 9,
                    writes: vec![]
                },
            ]
        );
    }

    #[test]
    fn truncation_at_every_byte_is_exact_prefix_or_typed_tear() {
        let mut buf = Vec::new();
        encode_into(&mut buf, 1, &[(5, 50)]);
        let first = buf.len();
        encode_into(&mut buf, 2, &[(6, 60), (7, 70)]);
        for cut in 0..=buf.len() {
            let (records, clean, err) = decode_stream(&buf[..cut]);
            // Either we land on a boundary (no error) or the tail reads
            // as a truncation — never corruption, never garbage records.
            if cut == 0 || cut == first || cut == buf.len() {
                assert!(err.is_none(), "cut {cut}: unexpected {err:?}");
            } else {
                assert!(err.expect("tear").is_truncation(), "cut {cut}");
            }
            assert_eq!(
                records.len(),
                usize::from(cut >= first) + usize::from(cut >= buf.len())
            );
            assert!(clean <= cut);
        }
    }

    #[test]
    fn corruption_is_flagged_not_replayed() {
        let mut buf = Vec::new();
        encode_into(&mut buf, 3, &[(8, 80)]);
        for bit in 0..8 {
            // Flip one bit in the payload: checksum must catch it.
            let mut bad = buf.clone();
            bad[HEADER_LEN + 3] ^= 1 << bit;
            let (records, clean, err) = decode_stream(&bad);
            assert!(records.is_empty() && clean == 0);
            assert!(matches!(err, Some(RecordError::BadChecksum { .. })));
        }
        // An absurd length field fails fast, before any allocation.
        let mut bad = buf.clone();
        bad[0..4].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert!(matches!(decode(&bad), Err(RecordError::BadLength { .. })));
        // A non-pair-aligned length is equally impossible.
        let mut bad = buf;
        bad[0..4].copy_from_slice(&(PAYLOAD_FIXED_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(decode(&bad), Err(RecordError::BadLength { .. })));
    }
}

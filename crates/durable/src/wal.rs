//! Group-committed write-ahead log.
//!
//! Concurrent committers append encoded records into a shared in-memory
//! segment under a mutex; the first appender to find no flush in flight
//! becomes the **leader**, swaps the segment out, and does one
//! `append` + `fsync` for the whole batch while later arrivals keep
//! staging behind it. Everyone blocks until the fsync covering *their*
//! record returns, so [`Wal::append`] only reports success once the
//! record is durable — but N committers share ~1 fsync instead of
//! paying N (the fsync-batch bench scenario measures exactly this
//! amortisation via [`WalStats`]).
//!
//! Failure model: the WAL is **sticky-poisoned** on the first IO error.
//! A failed fsync leaves the on-disk suffix in an unknown state, so no
//! further appends are accepted and every waiter (current and future)
//! gets [`WalError::Poisoned`]; the durable prefix on disk remains a
//! prefix of the committed history, which is all recovery needs.
//! `CommitHook::on_commit` is infallible by contract — the hook layer
//! ([`crate::heap::DurableHook`]) swallows the error and exposes it via
//! `io_error()` instead of unwinding into a backend's commit path.
// lint:allow — this file is deliberately clock-blessed (see xtask): the
// WAL runs on the IO path, not the transactional hot path.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::record;
use crate::vfs::Vfs;

/// On-disk name of the live log segment.
pub const WAL_FILE: &str = "wal";
/// On-disk name of the sealed segment awaiting checkpoint fold-in.
pub const WAL_OLD_FILE: &str = "wal.old";

/// Why an append could not be made durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A previous IO failure poisoned the log; the message describes the
    /// original failure. Durable state is a prefix of committed history.
    Poisoned(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Poisoned(msg) => write!(f, "wal poisoned: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

/// Group-commit accounting, for tests and the bench `fsync-batch`
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended (== committed update transactions logged).
    pub records: u64,
    /// Physical `append`+`fsync` batches issued. `records / flushes` is
    /// the group-commit amortisation factor.
    pub flushes: u64,
    /// Bytes durably written to the live segment.
    pub bytes: u64,
}

#[derive(Default)]
struct WalState {
    /// Records staged but not yet handed to a leader.
    buf: Vec<u8>,
    /// Sequence number of the most recently staged record.
    staged: u64,
    /// Highest sequence number known durable on disk.
    durable: u64,
    /// A leader is currently writing a batch.
    flushing: bool,
    /// First IO failure, if any — sticky.
    poisoned: Option<String>,
    stats: WalStats,
}

/// A group-committed write-ahead log over a [`Vfs`].
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    state: Mutex<WalState>,
    flushed: Condvar,
}

impl Wal {
    /// Open (or continue) the log at [`WAL_FILE`] on `vfs`. Appends go
    /// after whatever the file already holds — run
    /// [`crate::recover::recover`] first so the tail is known-clean.
    pub fn open(vfs: Arc<dyn Vfs>) -> Self {
        Self {
            vfs,
            state: Mutex::new(WalState::default()),
            flushed: Condvar::new(),
        }
    }

    /// Append one record and block until it is durable (fsynced), riding
    /// a shared batch fsync when other committers are in flight.
    ///
    /// Returns the record's sequence number (1-based, monotonically
    /// increasing in durability order).
    ///
    /// # Errors
    /// [`WalError::Poisoned`] once any batch write or fsync has failed;
    /// the record is then *not* durable and never will be.
    pub fn append(&self, version: u64, writes: &[(u64, u64)]) -> Result<u64, WalError> {
        let mut st = self.state.lock();
        if let Some(msg) = &st.poisoned {
            return Err(WalError::Poisoned(msg.clone()));
        }
        record::encode_into(&mut st.buf, version, writes);
        st.staged += 1;
        st.stats.records += 1;
        let my_seq = st.staged;
        loop {
            if st.durable >= my_seq {
                return Ok(my_seq);
            }
            if let Some(msg) = &st.poisoned {
                return Err(WalError::Poisoned(msg.clone()));
            }
            if st.flushing {
                // A leader is writing a batch that may or may not cover
                // us; wait for it to report and re-check.
                self.flushed.wait(&mut st);
            } else {
                st = self.lead_flush(st);
            }
        }
    }

    /// Become the leader: swap the staged segment out, write+fsync it
    /// without holding the lock, then publish the new durable watermark.
    fn lead_flush<'a>(
        &'a self,
        mut st: parking_lot::MutexGuard<'a, WalState>,
    ) -> parking_lot::MutexGuard<'a, WalState> {
        st.flushing = true;
        let batch = std::mem::take(&mut st.buf);
        let batch_covers = st.staged;
        drop(st);

        let res = self
            .vfs
            .append(WAL_FILE, &batch)
            .and_then(|()| self.vfs.sync(WAL_FILE));

        let mut st = self.state.lock();
        st.flushing = false;
        match res {
            Ok(()) => {
                st.durable = batch_covers;
                st.stats.flushes += 1;
                st.stats.bytes += batch.len() as u64;
            }
            Err(err) => {
                // The batch may be partially on disk (torn). Poison:
                // nothing staged after this point may claim durability.
                st.poisoned = Some(err.to_string());
            }
        }
        self.flushed.notify_all();
        st
    }

    /// Flush anything still staged (e.g. before sealing the segment).
    ///
    /// # Errors
    /// [`WalError::Poisoned`] as for [`append`](Self::append).
    pub fn flush(&self) -> Result<(), WalError> {
        let mut st = self.state.lock();
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(WalError::Poisoned(msg.clone()));
            }
            if st.durable >= st.staged && st.buf.is_empty() {
                return Ok(());
            }
            if st.flushing {
                self.flushed.wait(&mut st);
            } else {
                st = self.lead_flush(st);
            }
        }
    }

    /// Seal the live segment: flush staged records, then rename
    /// [`WAL_FILE`] → [`WAL_OLD_FILE`] so a checkpoint can fold it in
    /// while new appends start a fresh live segment. Appenders are held
    /// out for the duration (the lock is kept across the rename).
    ///
    /// Returns `false` (without renaming) when there is nothing to seal.
    ///
    /// # Errors
    /// [`WalError::Poisoned`] if the flush or rename fails (a failed
    /// rename poisons the log: the segment layout is then unknown).
    pub fn seal(&self) -> Result<bool, WalError> {
        self.flush()?;
        let mut st = self.state.lock();
        if let Some(msg) = &st.poisoned {
            return Err(WalError::Poisoned(msg.clone()));
        }
        // Note: the file may hold bytes from a previous process (reopen
        // after recovery) even when this instance has appended nothing,
        // so the check is on the file, not on `stats.bytes`.
        if !self.vfs.exists(WAL_FILE) {
            return Ok(false);
        }
        debug_assert!(!st.flushing, "flush() left a leader in flight");
        match self.vfs.rename(WAL_FILE, WAL_OLD_FILE) {
            Ok(()) => {
                st.stats.bytes = 0;
                Ok(true)
            }
            Err(err) => {
                st.poisoned = Some(format!("sealing wal: {err}"));
                self.flushed.notify_all();
                Err(WalError::Poisoned(err.to_string()))
            }
        }
    }

    /// Group-commit accounting so far.
    pub fn stats(&self) -> WalStats {
        self.state.lock().stats
    }

    /// The first IO failure, if the log is poisoned.
    pub fn io_error(&self) -> Option<String> {
        self.state.lock().poisoned.clone()
    }

    /// The underlying filesystem (for the checkpointer).
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Wal")
            .field("staged", &st.staged)
            .field("durable", &st.durable)
            .field("poisoned", &st.poisoned)
            .field("stats", &st.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultVfs};
    use crate::vfs::MemVfs;

    #[test]
    fn appends_are_durable_on_return_and_replayable() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone());
        wal.append(5, &[(1, 100)]).unwrap();
        wal.append(6, &[(2, 200), (3, 300)]).unwrap();
        // Durable, not merely written: a crash right now keeps both.
        mem.crash();
        let (records, _, err) = record::decode_stream(&mem.read(WAL_FILE).unwrap());
        assert!(err.is_none());
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].writes, vec![(2, 200), (3, 300)]);
    }

    #[test]
    fn group_commit_amortises_fsyncs_across_threads() {
        let mem = Arc::new(MemVfs::new());
        let fav = Arc::new(FaultVfs::new(mem, FaultPlan::default()));
        let wal = Arc::new(Wal::open(fav.clone() as Arc<dyn Vfs>));
        let threads = 8;
        let per = 64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per {
                        wal.append(0, &[(t, i)]).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, threads * per);
        assert_eq!(stats.flushes, fav.syncs());
        assert!(
            stats.flushes <= stats.records,
            "leader batches must never exceed record count"
        );
        // And every record made it to disk intact, each exactly once.
        let (records, _, err) = record::decode_stream(&fav.inner().read(WAL_FILE).unwrap());
        assert!(err.is_none());
        assert_eq!(records.len() as u64, threads * per);
    }

    #[test]
    fn fsync_failure_poisons_stickily() {
        let mem = Arc::new(MemVfs::new());
        let vfs = Arc::new(FaultVfs::new(
            mem,
            FaultPlan {
                fail_sync_from: Some(2),
                ..FaultPlan::default()
            },
        ));
        let wal = Wal::open(vfs as Arc<dyn Vfs>);
        wal.append(1, &[(1, 1)]).unwrap();
        let err = wal.append(2, &[(2, 2)]).unwrap_err();
        assert!(matches!(err, WalError::Poisoned(_)));
        // Sticky: later appends fail without touching the disk.
        assert!(wal.append(3, &[(3, 3)]).is_err());
        assert!(wal.io_error().is_some());
    }

    #[test]
    fn seal_renames_live_segment_and_resets_byte_accounting() {
        let mem = Arc::new(MemVfs::new());
        let wal = Wal::open(mem.clone() as Arc<dyn Vfs>);
        assert!(!wal.seal().unwrap(), "nothing to seal on an empty log");
        wal.append(1, &[(1, 1)]).unwrap();
        assert!(wal.seal().unwrap());
        assert!(mem.exists(WAL_OLD_FILE) && !mem.exists(WAL_FILE));
        wal.append(2, &[(2, 2)]).unwrap();
        assert!(mem.exists(WAL_FILE), "appends restart a fresh segment");
    }
}

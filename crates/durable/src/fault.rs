//! Deterministic IO fault injection.
//!
//! [`FaultVfs`] wraps any [`Vfs`] and converts a scripted [`FaultPlan`]
//! into concrete failures at exact operation counts: the Nth fsync
//! errors, the Nth append tears after K bytes, reads of a named file
//! come back with one bit flipped. Determinism is the point — every
//! failure the recovery battery exercises is reproducible from a plan
//! value, no timing or randomness involved, so a failing case is a
//! one-line repro.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::vfs::Vfs;

/// A scripted failure schedule, counted in operations since the
/// `FaultVfs` was built. All fields default to "never fault".
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail the `n`th call to [`Vfs::sync`] (1-based) and every sync
    /// after it — a dying disk, not a transient hiccup.
    pub fail_sync_from: Option<u64>,
    /// On the `n`th call to [`Vfs::append`] (1-based), persist only the
    /// first `k` bytes and return an error — a torn write.
    pub tear_append: Option<TornAppend>,
    /// Flip the given bit of the byte at `offset` whenever `file` is
    /// read — latent media corruption.
    pub flip_on_read: Option<BitFlip>,
}

/// Tear the `nth` append after `keep` bytes.
#[derive(Debug, Clone, Copy)]
pub struct TornAppend {
    /// 1-based index of the append call to tear.
    pub nth: u64,
    /// How many bytes of that append survive.
    pub keep: usize,
}

/// Flip bit `bit` of the byte at `offset` in reads of `file`.
#[derive(Debug, Clone)]
pub struct BitFlip {
    /// File whose reads are corrupted.
    pub file: String,
    /// Byte offset to corrupt.
    pub offset: usize,
    /// Bit index (0-7) to flip.
    pub bit: u8,
}

/// A [`Vfs`] decorator that injects the faults scripted in a
/// [`FaultPlan`].
pub struct FaultVfs<V: Vfs> {
    inner: Arc<V>,
    plan: FaultPlan,
    appends: AtomicU64,
    syncs: AtomicU64,
}

impl<V: Vfs> FaultVfs<V> {
    /// Wrap `inner`, injecting the faults in `plan`.
    pub fn new(inner: Arc<V>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        }
    }

    /// The wrapped filesystem (used by tests to crash/inspect it).
    pub fn inner(&self) -> &Arc<V> {
        &self.inner
    }

    /// Total [`Vfs::sync`] calls observed so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Total [`Vfs::append`] calls observed so far.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(name)?;
        if let Some(flip) = &self.plan.flip_on_read {
            if flip.file == name {
                if let Some(byte) = bytes.get_mut(flip.offset) {
                    *byte ^= 1 << flip.bit;
                }
            }
        }
        Ok(bytes)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let n = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(tear) = self.plan.tear_append {
            if n == tear.nth {
                let keep = tear.keep.min(data.len());
                self.inner.append(name, &data[..keep])?;
                return Err(injected("torn append"));
            }
        }
        self.inner.append(name, data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let n = self.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(from) = self.plan.fail_sync_from {
            if n >= from {
                return Err(injected("fsync failure"));
            }
        }
        self.inner.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn nth_sync_fails_and_stays_failed() {
        let vfs = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan {
                fail_sync_from: Some(2),
                ..FaultPlan::default()
            },
        );
        vfs.append("f", b"a").unwrap();
        vfs.sync("f").unwrap();
        vfs.append("f", b"b").unwrap();
        assert!(vfs.sync("f").is_err());
        assert!(vfs.sync("f").is_err(), "sync failure is sticky");
        assert_eq!(vfs.inner().durable_bytes("f"), b"a");
    }

    #[test]
    fn torn_append_persists_a_prefix_then_errors() {
        let vfs = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan {
                tear_append: Some(TornAppend { nth: 2, keep: 3 }),
                ..FaultPlan::default()
            },
        );
        vfs.append("f", b"full").unwrap();
        assert!(vfs.append("f", b"torn-off").is_err());
        vfs.sync("f").unwrap();
        assert_eq!(vfs.read("f").unwrap(), b"fulltor");
    }

    #[test]
    fn bit_flip_corrupts_reads_of_the_named_file_only() {
        let vfs = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan {
                flip_on_read: Some(BitFlip {
                    file: "f".into(),
                    offset: 0,
                    bit: 0,
                }),
                ..FaultPlan::default()
            },
        );
        vfs.append("f", b"\x00").unwrap();
        vfs.append("g", b"\x00").unwrap();
        assert_eq!(vfs.read("f").unwrap(), b"\x01", "bit 0 flipped");
        assert_eq!(vfs.read("g").unwrap(), b"\x00", "other files untouched");
    }
}

//! The virtual filesystem the durable layer writes through.
//!
//! Everything in this crate does its IO through the object-safe [`Vfs`]
//! trait instead of `std::fs` directly, for one reason: **crash testing**.
//! [`StdVfs`] is the thin production binding to a real directory;
//! [`MemVfs`] is an in-memory filesystem that distinguishes *durable*
//! bytes (fsynced) from *pending* bytes (written but not yet synced), so a
//! test can [`MemVfs::crash`] the "machine" at any point and recover from
//! exactly the bytes a real kill would have left behind. The fault
//! injection layer ([`crate::fault::FaultVfs`]) wraps any `Vfs` and turns
//! scripted op counts into torn writes, fsync errors, and bit flips.
//!
//! File names are flat, slash-free keys relative to the store directory
//! (the durable layer only ever uses `wal`, `wal.old`, `snapshot`,
//! `snapshot.tmp`). Renames are modeled as atomic and immediately durable
//! — the POSIX idiom of `rename(2)` over a synced temp file; the
//! directory-entry fsync a fully paranoid production store would add is
//! out of scope here and called out in DESIGN.md.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

/// Object-safe filesystem surface of the durable layer: whole-file reads,
/// appends, fsync, atomic rename, remove, truncate.
pub trait Vfs: Send + Sync {
    /// Read the entire current content of `name` (durable *and* pending
    /// bytes — what a live process sees). Missing files read as
    /// `NotFound`.
    ///
    /// # Errors
    /// `NotFound` when the file does not exist; backend IO errors
    /// otherwise.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Append `data` to `name`, creating it if missing. Appended bytes
    /// are *pending* (lost on crash) until [`sync`](Self::sync) returns.
    ///
    /// # Errors
    /// Backend IO errors (and injected faults).
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Make every byte previously appended to `name` durable (fsync).
    ///
    /// # Errors
    /// Backend IO errors (and injected faults). After a failed sync the
    /// durability of the pending bytes is unknown — callers must treat
    /// the file as poisoned (the WAL does).
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    ///
    /// # Errors
    /// `NotFound` when `from` does not exist; backend IO errors.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Remove `name`. Removing a missing file is an error (`NotFound`).
    ///
    /// # Errors
    /// `NotFound` when the file does not exist; backend IO errors.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Whether `name` currently exists.
    fn exists(&self, name: &str) -> bool;

    /// Truncate `name` to `len` bytes (used by recovery to cut a torn or
    /// corrupt WAL tail). A no-op when the file is already shorter.
    ///
    /// # Errors
    /// `NotFound` when the file does not exist; backend IO errors.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
}

/// Production binding: files under a root directory on the real
/// filesystem.
#[derive(Debug)]
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// Bind to `root`, creating the directory if needed.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Vfs for StdVfs {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        // fsync(2) applies to the file, not the handle that wrote it, so
        // a fresh handle is sufficient to flush earlier appends.
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        if f.metadata()?.len() > len {
            f.set_len(len)?;
            f.sync_all()?;
        }
        Ok(())
    }
}

/// One in-memory file: the durable prefix (survives [`MemVfs::crash`])
/// plus the pending suffix (appended but not yet fsynced).
#[derive(Debug, Default, Clone)]
struct MemFile {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl MemFile {
    fn combined(&self) -> Vec<u8> {
        let mut out = self.durable.clone();
        out.extend_from_slice(&self.pending);
        out
    }
}

/// In-memory filesystem with explicit durability tracking — the crash
/// simulator the recovery battery runs on.
#[derive(Debug, Default)]
pub struct MemVfs {
    files: Mutex<BTreeMap<String, MemFile>>,
}

impl MemVfs {
    /// An empty in-memory filesystem.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate a process kill / power loss: every pending (unsynced)
    /// byte vanishes, every durable byte survives.
    pub fn crash(&self) {
        let mut files = self.files.lock().expect("mem vfs lock");
        for file in files.values_mut() {
            file.pending.clear();
        }
    }

    /// The bytes of `name` that would survive a crash right now (empty if
    /// the file does not exist).
    #[must_use]
    pub fn durable_bytes(&self, name: &str) -> Vec<u8> {
        self.files
            .lock()
            .expect("mem vfs lock")
            .get(name)
            .map(|f| f.durable.clone())
            .unwrap_or_default()
    }

    /// A fresh `MemVfs` seeded with exactly one durable file — the
    /// building block of the crash-point battery (`wal = W[..offset]`).
    #[must_use]
    pub fn with_file(name: &str, durable: Vec<u8>) -> Self {
        let vfs = Self::new();
        vfs.files.lock().expect("mem vfs lock").insert(
            name.to_string(),
            MemFile {
                durable,
                pending: Vec::new(),
            },
        );
        vfs
    }

    /// Clone the current *durable* image (name → synced bytes), i.e. the
    /// filesystem a crash right now would leave behind. Use it to build a
    /// post-crash replica with [`from_durable_image`](Self::from_durable_image).
    #[must_use]
    pub fn durable_image(&self) -> BTreeMap<String, Vec<u8>> {
        self.files
            .lock()
            .expect("mem vfs lock")
            .iter()
            .filter(|(_, f)| !f.durable.is_empty())
            .map(|(name, f)| (name.clone(), f.durable.clone()))
            .collect()
    }

    /// Rebuild a filesystem from a durable image (see
    /// [`durable_image`](Self::durable_image)).
    #[must_use]
    pub fn from_durable_image(image: BTreeMap<String, Vec<u8>>) -> Self {
        let vfs = Self::new();
        {
            let mut files = vfs.files.lock().expect("mem vfs lock");
            for (name, durable) in image {
                files.insert(
                    name,
                    MemFile {
                        durable,
                        pending: Vec::new(),
                    },
                );
            }
        }
        vfs
    }
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
}

impl Vfs for MemVfs {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("mem vfs lock")
            .get(name)
            .map(MemFile::combined)
            .ok_or_else(|| not_found(name))
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem vfs lock")
            .entry(name.to_string())
            .or_default()
            .pending
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem vfs lock");
        let file = files.get_mut(name).ok_or_else(|| not_found(name))?;
        let pending = std::mem::take(&mut file.pending);
        file.durable.extend_from_slice(&pending);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem vfs lock");
        let file = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem vfs lock")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| not_found(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.lock().expect("mem vfs lock").contains_key(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem vfs lock");
        let file = files.get_mut(name).ok_or_else(|| not_found(name))?;
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len <= file.durable.len() {
            file.durable.truncate(len);
            file.pending.clear();
        } else {
            file.pending.truncate(len - file.durable.len());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_crash_drops_only_unsynced_bytes() {
        let vfs = MemVfs::new();
        vfs.append("wal", b"durable").unwrap();
        vfs.sync("wal").unwrap();
        vfs.append("wal", b"+pending").unwrap();
        assert_eq!(vfs.read("wal").unwrap(), b"durable+pending");
        vfs.crash();
        assert_eq!(vfs.read("wal").unwrap(), b"durable");
        assert_eq!(vfs.durable_bytes("wal"), b"durable");
    }

    #[test]
    fn mem_vfs_rename_remove_exists_truncate() {
        let vfs = MemVfs::new();
        vfs.append("a", b"abcdef").unwrap();
        vfs.sync("a").unwrap();
        vfs.append("a", b"ghi").unwrap();
        vfs.rename("a", "b").unwrap();
        assert!(!vfs.exists("a") && vfs.exists("b"));
        // Truncation inside the durable prefix also discards pending.
        vfs.truncate("b", 4).unwrap();
        assert_eq!(vfs.read("b").unwrap(), b"abcd");
        vfs.remove("b").unwrap();
        assert!(vfs.read("b").is_err());
        assert!(vfs.remove("b").is_err());
        assert!(vfs.rename("b", "c").is_err());
    }

    #[test]
    fn durable_image_round_trips_into_a_replica() {
        let vfs = MemVfs::new();
        vfs.append("wal", b"synced").unwrap();
        vfs.sync("wal").unwrap();
        vfs.append("wal", b"lost").unwrap();
        vfs.append("tmp", b"never-synced").unwrap();
        let replica = MemVfs::from_durable_image(vfs.durable_image());
        assert_eq!(replica.read("wal").unwrap(), b"synced");
        assert!(!replica.exists("tmp"), "unsynced files do not survive");
    }

    #[test]
    fn std_vfs_round_trips_under_a_temp_root() {
        let root = std::env::temp_dir().join(format!("durable-vfs-{}", std::process::id()));
        let vfs = StdVfs::new(&root).unwrap();
        let name = "t.log";
        let _ = vfs.remove(name);
        vfs.append(name, b"hello ").unwrap();
        vfs.append(name, b"world").unwrap();
        vfs.sync(name).unwrap();
        assert_eq!(vfs.read(name).unwrap(), b"hello world");
        vfs.truncate(name, 5).unwrap();
        assert_eq!(vfs.read(name).unwrap(), b"hello");
        vfs.rename(name, "t2.log").unwrap();
        assert!(vfs.exists("t2.log") && !vfs.exists(name));
        vfs.remove("t2.log").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}

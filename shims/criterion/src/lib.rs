//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the `bench` crate
//! uses: [`Criterion`], [`BenchmarkGroup`] (with `sample_size`,
//! `warm_up_time`, `measurement_time`, `throughput`), [`BenchmarkId`],
//! and a [`Bencher`] supporting `iter` and `iter_custom`. Statistics
//! are a simple min/mean/median over the collected samples — enough to
//! eyeball trends; no outlier analysis, HTML reports, or comparisons.
//!
//! `--bench` (passed by `cargo bench`) and a substring filter argument
//! are accepted; `--test` runs each benchmark once, which is what
//! `cargo test` does for bench targets.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from proving a value unused.
///
/// Same contract as `criterion::black_box`; implemented with
/// `std::hint::black_box`, which is a stable compiler intrinsic.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement (the criterion default).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier composed of a name and a parameter shown after `/`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run per sample.
    iters: u64,
    /// Measured duration of the last sample, filled by `iter*`.
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the routine time itself: it receives the iteration count and
    /// returns the total duration those iterations took.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    /// Run each benchmark exactly once (`--test` mode).
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            throughput: None,
            test_mode: false,
            filter: None,
        }
    }
}

/// The benchmark manager: entry point of every bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Apply `cargo bench`/`cargo test` CLI arguments (`--bench` is
    /// ignored, `--test` switches to run-once mode, the first free
    /// argument is a substring filter).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.settings.test_mode = true,
                s if s.starts_with("--") => {}
                s => self.settings.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_benchmark(&settings, None, &id.into().id, f);
        self
    }

    /// Final-summary hook (report generation in real criterion); a
    /// no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing settings and a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// How long to warm up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Target total measurement time across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput, so results are
    /// also reported as elements (or bytes) per second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&self.settings, Some(&self.name), &id.into().id, f);
        self
    }

    /// Close the group (report boundary in real criterion).
    pub fn finish(self) {}
}

fn run_benchmark(
    settings: &Settings,
    group: Option<&str>,
    id: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &settings.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }

    if settings.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {full} ... ok");
        return;
    }

    // Warm-up: run single-iteration samples until the warm-up budget is
    // spent, to estimate per-iteration cost.
    let warm_start = Instant::now();
    let mut probe_iters: u64 = 0;
    let mut probe_time = Duration::ZERO;
    while warm_start.elapsed() < settings.warm_up_time || probe_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        probe_iters += 1;
        probe_time += b.elapsed;
    }
    let per_iter = probe_time
        .checked_div(probe_iters as u32)
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));

    // Split the measurement budget into sample_size samples of
    // whatever iteration count the warm-up estimate suggests fits.
    let budget_per_sample = settings.measurement_time / settings.sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters_per_sample.max(1) as u32);
    }
    samples.sort_unstable();

    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    print!("{full:<50} min {min:>12.3?}  median {median:>12.3?}  mean {mean:>12.3?}");
    if let Some(t) = settings.throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            print!("  {:>12.0} {unit}", count as f64 / secs);
        }
    }
    println!();
}

/// Define a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn bencher_iter_custom_uses_returned_duration() {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(|iters| Duration::from_nanos(iters * 10));
        assert_eq!(b.elapsed, Duration::from_nanos(30));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("TL2", 4).id, "TL2/4");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }

    #[test]
    fn group_runs_benchmark_in_test_mode() {
        let mut c = Criterion::default();
        c.settings.test_mode = true;
        let mut ran = 0;
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1);
    }
}

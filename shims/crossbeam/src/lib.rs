//! Offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Two submodules are provided, mirroring the crossbeam facade:
//!
//! * [`epoch`] — pin/defer-based reclamation with the same safety
//!   contract as `crossbeam-epoch`: a function deferred through a
//!   [`epoch::Guard`] runs only once every guard that was pinned at
//!   defer time has been dropped. The implementation is a global
//!   mutexed registry rather than per-thread epoch counters — correct,
//!   just not lock-free (the consumers here only touch it on node
//!   retirement, never on hot read paths).
//! * [`queue`] — a [`queue::SegQueue`] MPMC queue backed by a mutexed
//!   `VecDeque`.

#![forbid(unsafe_code)]

/// Epoch-based deferred execution.
pub mod epoch {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    type Deferred = Box<dyn FnOnce() + Send>;

    struct Collector {
        /// Monotone pin counter; doubles as the "epoch".
        epoch: u64,
        /// Epochs of currently live guards (multiset, sorted by construction).
        active: VecDeque<u64>,
        /// Deferred functions tagged with the epoch current at defer time.
        pending: VecDeque<(u64, Deferred)>,
    }

    static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

    fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> R {
        let mut slot = COLLECTOR.lock().unwrap_or_else(|p| p.into_inner());
        let collector = slot.get_or_insert_with(|| Collector {
            epoch: 0,
            active: VecDeque::new(),
            pending: VecDeque::new(),
        });
        f(collector)
    }

    /// Pop every deferred function that is now safe to run: its tag is
    /// older than every still-active guard. Runs them after releasing
    /// the collector lock (a deferred fn may itself pin or push).
    fn collect() {
        let ready: Vec<Deferred> = with_collector(|c| {
            let min_active = c.active.front().copied().unwrap_or(u64::MAX);
            let mut ready = Vec::new();
            while let Some((tag, _)) = c.pending.front() {
                if *tag < min_active {
                    ready.push(c.pending.pop_front().unwrap().1);
                } else {
                    break;
                }
            }
            ready
        });
        for f in ready {
            f();
        }
    }

    /// A pinned-thread witness. While alive, deferred functions
    /// scheduled earlier (by any thread) will not run.
    #[derive(Debug)]
    pub struct Guard {
        epoch: u64,
    }

    /// Pin the current thread, returning a guard.
    #[must_use]
    pub fn pin() -> Guard {
        with_collector(|c| {
            c.epoch += 1;
            let epoch = c.epoch;
            c.active.push_back(epoch);
            Guard { epoch }
        })
    }

    impl Guard {
        /// Schedule `f` to run once every currently pinned guard
        /// (including this one) has been dropped.
        pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
            with_collector(|c| {
                let tag = c.epoch;
                c.pending.push_back((tag, Box::new(f)));
            });
        }

        /// Give the collector an opportunity to run ripe deferred
        /// functions (those not blocked by this or other guards).
        pub fn flush(&self) {
            collect();
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            with_collector(|c| {
                if let Some(pos) = c.active.iter().position(|&e| e == self.epoch) {
                    c.active.remove(pos);
                }
            });
            collect();
        }
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    ///
    /// The real `SegQueue` is lock-free; this stand-in is a mutexed
    /// `VecDeque` with the same observable semantics.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        #[must_use]
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|p| p.into_inner())
        }

        /// Append `value` at the tail.
        pub fn push(&self, value: T) {
            self.guard().push_back(value);
        }

        /// Remove and return the head element, if any.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of queued elements.
        #[must_use]
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True if no elements are queued.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::epoch;
    use super::queue::SegQueue;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard};

    /// The epoch collector is process-global, so tests that assert on
    /// exact collection timing must not overlap with each other's pins.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn deferred_runs_only_after_unpin() {
        let _serial = serial();
        let ran = Arc::new(AtomicBool::new(false));
        let g = epoch::pin();
        let r = Arc::clone(&ran);
        g.defer(move || r.store(true, Ordering::SeqCst));
        g.flush();
        assert!(!ran.load(Ordering::SeqCst), "ran while still pinned");
        drop(g);
        // Collection is triggered by the drop itself.
        assert!(ran.load(Ordering::SeqCst), "never ran after unpin");
    }

    #[test]
    fn deferred_blocked_by_other_guard() {
        let _serial = serial();
        let ran = Arc::new(AtomicBool::new(false));
        let blocker = epoch::pin();
        let g = epoch::pin();
        let r = Arc::clone(&ran);
        g.defer(move || r.store(true, Ordering::SeqCst));
        drop(g);
        assert!(
            !ran.load(Ordering::SeqCst),
            "ran while a pre-defer guard was still pinned"
        );
        drop(blocker);
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn later_pins_do_not_block_older_deferrals() {
        let _serial = serial();
        let ran = Arc::new(AtomicBool::new(false));
        let g = epoch::pin();
        let r = Arc::clone(&ran);
        g.defer(move || r.store(true, Ordering::SeqCst));
        drop(g);
        let late = epoch::pin();
        late.flush();
        assert!(
            ran.load(Ordering::SeqCst),
            "a pin taken after the deferral must not block it"
        );
        drop(late);
    }
}

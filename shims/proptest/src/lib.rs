//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the strategy combinators and the [`proptest!`] macro this
//! workspace's property tests use. Differences from real proptest:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message (all inputs derive `Debug` here).
//! * **Deterministic.** The RNG seed is derived from the test function
//!   name, so a failure reproduces bit-for-bit on every run and
//!   machine. Set `PROPTEST_SHIM_SEED` to explore a different stream.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)` — equivalent observable behavior
//!   for `#[test]` consumers.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic RNG threaded through strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (used by the [`proptest!`] macro).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so consecutive seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a hash of the test name; the macro uses it as the default seed.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            return n;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a second strategy from it, and sample
    /// that (dependent generation).
    fn prop_flat_map<S: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (what [`prop_oneof!`] arms become).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted boxed alternatives
/// (the expansion of [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Build from the alternative strategies.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Integer range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Widen through i128 so spans of narrow signed types
                // (e.g. -100i8..100) cannot overflow; the offset
                // re-narrows correctly because addition is modular.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies (up to 4 components, extend as needed).
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`'s full domain.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection and array strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification for [`vec()`]: fixed or ranged.
        #[derive(Debug, Clone)]
        pub enum SizeRange {
            /// Exactly this many elements.
            Fixed(usize),
            /// Uniformly chosen length in `[start, end)`.
            Span(usize, usize),
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange::Fixed(n)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange::Span(r.start, r.end)
            }
        }

        /// Strategy for `Vec<T>` with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose elements come from `element` and whose length
        /// comes from `size` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = match self.size {
                    SizeRange::Fixed(n) => n,
                    SizeRange::Span(lo, hi) => {
                        assert!(lo < hi, "empty vec size range");
                        lo + rng.below((hi - lo) as u64) as usize
                    }
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[T; 2]` from one element strategy.
        pub struct Uniform2<S>(S);

        /// Two independent draws from `element`.
        pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
            Uniform2(element)
        }

        impl<S: Strategy> Strategy for Uniform2<S> {
            type Value = [S::Value; 2];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; 2] {
                [self.0.generate(rng), self.0.generate(rng)]
            }
        }
    }
}

/// What property tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&$strat, &mut rng),)+);
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest shim: {} failed at case {case}/{} (seed from test name; \
                         set PROPTEST_SHIM_SEED to vary)",
                        stringify!($name),
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..=7).generate(&mut rng);
            assert!((3..=7).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0u32..10, 3usize).generate(&mut rng);
        assert_eq!(fixed.len(), 3);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn flat_map_dependent_generation() {
        let mut rng = TestRng::new(4);
        let s = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..10, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_name_seed() {
        let mut a = TestRng::new(crate::seed_for("some_test"));
        let mut b = TestRng::new(crate::seed_for("some_test"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_params(x in 0u32..10, ys in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 4);
        }
    }
}

//! Offline stand-in for the `parking_lot` crate (see `shims/README.md`).
//!
//! Provides a [`Mutex`] and [`Condvar`] with `parking_lot`'s ergonomics —
//! `lock()` returns the guard directly instead of a poisoning `Result`,
//! `Condvar::wait`/`wait_for` take the guard by `&mut` — backed by
//! `std::sync`. A poisoned std primitive (a panic while holding the lock)
//! is treated as still-usable, matching `parking_lot`'s no-poisoning
//! semantics.
//!
//! On top of the crate-compatible surface, the [`park`] module adds the
//! thread park/unpark primitive behind the STM retry loop's progress
//! backstop and the `stm-core::wait` waiter registry (the real crate
//! keeps this in `parking_lot_core`): a [`park::Parker`]/
//! [`park::Unparker`] pair with token semantics, so a conflict loser or
//! a blocked `retry()` can *sleep* with a bounded timeout and a
//! committing writer wakes it early — an unpark that lands before the
//! park deposits a token the next park consumes immediately, which is
//! exactly the lost-wakeup guarantee `wait` builds on.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{LockResult, TryLockError};
use std::time::Duration;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard (rather than aliasing it) so [`Condvar::wait`] can
/// take it by `&mut` — `parking_lot`'s signature — while std's wait
/// consumes and returns the guard. The `Option` is `Some` for the guard's
/// whole life outside of the wait call itself.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed (rather than a
    /// notification).
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s guard-by-`&mut` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified. The guard is atomically released for the wait
    /// and re-acquired before returning (std semantics; spurious wakeups
    /// possible — re-check the predicate).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(unpoison(self.inner.wait(inner)));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub mod park {
    //! Thread parking with token semantics (the `parking_lot_core`-shaped
    //! extension; see the crate docs).
    //!
    //! An [`Unparker`] deposits a *token*; [`Parker::park`] consumes one,
    //! blocking until it is available. A token deposited while nobody is
    //! parked is kept, so an unpark that races ahead of the park is never
    //! lost — the next `park` returns immediately. Tokens do not
    //! accumulate beyond one.

    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[derive(Debug, Default)]
    struct Inner {
        token: Mutex<bool>,
        wake: Condvar,
    }

    /// The parking side: owned by the thread that sleeps.
    #[derive(Debug)]
    pub struct Parker {
        inner: Arc<Inner>,
    }

    /// The waking side: clone freely, hand to other threads.
    #[derive(Debug, Clone)]
    pub struct Unparker {
        inner: Arc<Inner>,
    }

    impl Default for Parker {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Parker {
        /// A fresh parker with no token deposited.
        #[must_use]
        pub fn new() -> Self {
            Self {
                inner: Arc::new(Inner::default()),
            }
        }

        /// A handle that can wake this parker from any thread.
        #[must_use]
        pub fn unparker(&self) -> Unparker {
            Unparker {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Block until a token is available, then consume it.
        pub fn park(&self) {
            let mut token = self.inner.token.lock();
            while !*token {
                self.inner.wake.wait(&mut token);
            }
            *token = false;
        }

        /// Block until a token is available or `timeout` elapses. Returns
        /// `true` if a token was consumed (i.e. an unpark woke the wait).
        pub fn park_timeout(&self, timeout: Duration) -> bool {
            let mut token = self.inner.token.lock();
            let mut remaining = timeout;
            while !*token {
                let before = std::time::Instant::now();
                if self.inner.wake.wait_for(&mut token, remaining).timed_out() {
                    break;
                }
                // Spurious or stolen wakeup: shrink the budget and re-wait.
                remaining = remaining.saturating_sub(before.elapsed());
                if remaining.is_zero() {
                    break;
                }
            }
            let woke = *token;
            *token = false;
            woke
        }
    }

    impl Unparker {
        /// Deposit a token, waking the parker if it is currently parked.
        pub fn unpark(&self) {
            let mut token = self.inner.token.lock();
            *token = true;
            self.inner.wake.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // The guard is usable again after the wait.
        *g = true;
        assert!(*g);
    }

    #[test]
    fn condvar_handoff_between_threads() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*other;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
        });
        let (m, cv) = &*shared;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        t.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn parker_timeout_expires_without_token() {
        let p = park::Parker::new();
        let started = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(10)));
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        let p = park::Parker::new();
        p.unparker().unpark();
        // The pre-deposited token makes this return immediately.
        assert!(p.park_timeout(Duration::from_secs(60)));
        // …and it is consumed: the next timed park expires.
        assert!(!p.park_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let p = Arc::new(park::Parker::new());
        let u = p.unparker();
        let parked = Arc::clone(&p);
        let t = std::thread::spawn(move || parked.park());
        std::thread::sleep(Duration::from_millis(20));
        u.unpark();
        t.join().unwrap();
    }
}

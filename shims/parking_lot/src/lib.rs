//! Offline stand-in for the `parking_lot` crate (see `shims/README.md`).
//!
//! Provides a [`Mutex`] with `parking_lot`'s ergonomics — `lock()`
//! returns the guard directly instead of a poisoning `Result` — backed
//! by `std::sync::Mutex`. A poisoned std mutex (a panic while holding
//! the lock) is treated as still-usable, matching `parking_lot`'s
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the slice of the `rand` 0.8 API this workspace uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (over half-open integer ranges) and
//! `gen_bool`. The generator is xorshift64* seeded through SplitMix64 —
//! statistically plenty for workload mixing, and deterministic per seed.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Types that can seed themselves from a single `u64`.
pub trait SeedableRng: Sized {
    /// Construct the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: turns a weak seed into a well-mixed state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A type that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Object-safe core: produce the next 64 random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of the plain variant is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = high.wrapping_sub(low) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = splitmix64(&mut s) | 1; // xorshift state must be nonzero
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}

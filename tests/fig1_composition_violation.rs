//! Fig. 1 of the paper at the collections level: `insertIfAbsent(x, y)`
//! composed from elastic `contains` and `add` building blocks, against an
//! adversary inserting `y` between the two children.
//!
//! The interleaving is deterministic (the adversary transaction runs
//! inside a hook between the children, exactly once), and is replayed on
//! all three e.e.c structures:
//!
//! * under **OE-STM**, the composition must abort and retry, and never
//!   insert `x`;
//! * under **E-STM** (outheritance off), the composition must commit `x`
//!   although `y` was present — the atomicity violation that motivates
//!   the paper.
//!
//! This is an SPI-level suite on purpose: injecting a committed adversary
//! transaction between two children of one specific attempt needs the raw
//! [`Stm::run`] hooks underneath the `atomic` facade, so it drives the
//! [`SetOps`] building blocks directly. (The facade-level twin of the
//! safe path lives in `tests/api_semantics.rs`.)

use composing_relaxed_transactions::cec::{HashSet, LinkedListSet, OpScratch, SetOps, SkipListSet};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::{Stm, Transaction, TxKind};

/// SPI-level atomic helpers over the building blocks (what `SetExt` does
/// through the facade, spelled out against the raw trait).
fn add<C: SetOps>(stm: &OeStm, set: &C, key: i64) -> bool {
    let mut scratch = OpScratch::default();
    stm.run(TxKind::Elastic, |tx| {
        set.release_unpublished(&mut scratch.allocated);
        set.add_in(tx, key, &mut scratch)
    })
}

fn contains<C: SetOps>(stm: &OeStm, set: &C, key: i64) -> bool {
    stm.run(TxKind::Elastic, |tx| set.contains_in(tx, key))
}

/// insertIfAbsent(x, y) with an adversary `add(y)` transaction injected
/// between the children of the first attempt.
fn insert_if_absent_with_adversary<C: SetOps>(stm: &OeStm, set: &C, x: i64, y: i64) -> bool {
    let mut scratch = OpScratch::default();
    let mut adv_scratch = OpScratch::default();
    let mut first_attempt = true;
    stm.run(TxKind::Elastic, |tx| {
        set.release_unpublished(&mut scratch.allocated);
        scratch.unlinked.clear();
        let present = tx.child(TxKind::Elastic, |t| set.contains_in(t, y))?;
        if first_attempt {
            first_attempt = false;
            stm.run(TxKind::Elastic, |t| {
                set.release_unpublished(&mut adv_scratch.allocated);
                set.add_in(t, y, &mut adv_scratch)
            });
        }
        if present {
            return Ok(false);
        }
        tx.child(TxKind::Elastic, |t| set.add_in(t, x, &mut scratch))?;
        Ok(true)
    })
}

fn seed<C: SetOps>(stm: &OeStm, set: &C) {
    for k in (0..60).step_by(2) {
        add(stm, set, k);
    }
}

fn check_structure<C: SetOps>(make: impl Fn() -> C, name: &str) {
    let (x, y) = (101, 33); // both initially absent (odd / out of range)

    // OE-STM: atomic — the race is detected.
    let stm = OeStm::new();
    let set = make();
    seed(&stm, &set);
    let inserted = insert_if_absent_with_adversary(&stm, &set, x, y);
    assert!(
        !inserted,
        "{name}/OE-STM: retry must observe y and skip the insert"
    );
    assert!(
        !contains(&stm, &set, x),
        "{name}/OE-STM: x must not be present"
    );
    assert!(contains(&stm, &set, y));
    assert!(
        stm.stats().aborts() >= 1,
        "{name}/OE-STM: the stale composition must abort at least once"
    );

    // E-STM: the violation commits silently.
    let stm = OeStm::estm_compat();
    let set = make();
    seed(&stm, &set);
    let inserted = insert_if_absent_with_adversary(&stm, &set, x, y);
    assert!(
        inserted,
        "{name}/E-STM: the stale composition commits (the Fig. 1 bug)"
    );
    assert!(
        contains(&stm, &set, x) && contains(&stm, &set, y),
        "{name}/E-STM: both x and y present — atomicity violated"
    );
}

#[test]
fn fig1_linked_list() {
    check_structure(LinkedListSet::new, "LinkedListSet");
}

#[test]
fn fig1_skip_list() {
    check_structure(SkipListSet::new, "SkipListSet");
}

#[test]
fn fig1_hash_set() {
    check_structure(|| HashSet::new(4), "HashSet");
}

/// The workaround the paper quotes from the elastic-transactions authors:
/// "use regular mode when composing". A regular parent under E-STM mode
/// is still safe because regular children protect every read until the
/// top-level commit.
#[test]
fn regular_mode_workaround_is_safe_even_without_outheritance() {
    let stm = OeStm::estm_compat();
    let set = LinkedListSet::new();
    seed(&stm, &set);
    let (x, y) = (101, 33);
    let mut scratch = OpScratch::default();
    let mut adv_scratch = OpScratch::default();
    let mut first = true;
    let inserted = stm.run(TxKind::Regular, |tx| {
        set.release_unpublished(&mut scratch.allocated);
        scratch.unlinked.clear();
        // Regular children: reads go to the permanently tracked read set.
        let present = tx.child(TxKind::Regular, |t| set.contains_in(t, y))?;
        if first {
            first = false;
            stm.run(TxKind::Elastic, |t| {
                set.release_unpublished(&mut adv_scratch.allocated);
                set.add_in(t, y, &mut adv_scratch)
            });
        }
        if present {
            return Ok(false);
        }
        tx.child(TxKind::Regular, |t| set.add_in(t, x, &mut scratch))?;
        Ok(true)
    });
    assert!(!inserted, "regular composition must detect the intruder");
    assert!(!contains(&stm, &set, x));
    assert!(
        stm.stats().aborts() >= 1,
        "correctness recovered at the price of classic-transaction aborts"
    );
}

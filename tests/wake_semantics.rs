//! Wake-on-commit semantics, pinned across every registry backend and —
//! for the races the backends cannot orchestrate deterministically —
//! directly against the `stm-core::wait` registry:
//!
//! * **lost-wakeup race** — a writer that commits *between* the waiter's
//!   post-registration re-validation and its park must still wake it:
//!   the token the notify deposits makes the park return immediately.
//!   The interleaving is forced exactly (the `still_valid` hook blocks
//!   until the notify has run), so the test is deterministic and rides
//!   the 30× deflake rotation;
//! * **wake-on-commit, every backend** — a consumer parked in `retry()`
//!   is woken by a committing writer to its read set, the result is the
//!   post-commit value, and the park accounting balances
//!   (`wakeups + spurious_wakeups == retry_parks`);
//! * **crowd wake** — one commit wakes every waiter parked on the same
//!   location;
//! * **`or_else` suppression** — an alternation frame means "switch
//!   branches", never "park": the fallback serves with zero parks.

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::stm_core::api::{Atomic, Policy};
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::{wait, StmStats, TVar};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Every backend in the registry — wake-on-commit must be uniform.
const BACKENDS: [&str; 6] = ["oe", "oe-estm-compat", "lsa", "tl2", "swiss", "boost"];

fn runner(backend: &str) -> Atomic<Backend> {
    Atomic::new(
        backend_registry()
            .build_default(backend)
            .expect("registry backend"),
    )
}

#[test]
fn commit_between_revalidation_and_park_cannot_lose_the_wakeup() {
    // The classic lost-wakeup window, forced exactly: the waiter has
    // registered and re-validated (the world still looks blocked), and
    // only THEN does the writer commit. Token semantics must make the
    // park return Woken immediately — never sleep out the timeout, and
    // never (in a world without timeouts) hang forever.
    const ROUNDS: u32 = 200;
    const LOCATION: usize = 0x5EED;
    let stats = StmStats::new();
    for _ in 0..ROUNDS {
        let phase = AtomicU32::new(0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                wait::wait_for_locations(
                    &mut core::iter::once(LOCATION),
                    &|| {
                        // Registered; tell the writer to commit, and
                        // only report "still blocked" once it has.
                        phase.store(1, Ordering::SeqCst);
                        while phase.load(Ordering::SeqCst) != 2 {
                            std::hint::spin_loop();
                        }
                        true
                    },
                    // The largest escalation step: a lost token would
                    // surface as a clearly-timed-out park.
                    5,
                    &stats,
                )
            });
            while phase.load(Ordering::SeqCst) != 1 {
                std::hint::spin_loop();
            }
            // The "commit": notify the written location exactly inside
            // the revalidation→park window.
            wait::notify_commit(&|f| f(LOCATION));
            phase.store(2, Ordering::SeqCst);
            assert_eq!(
                waiter.join().expect("waiter thread"),
                wait::WaitOutcome::Woken,
                "a notify inside the revalidation→park window must wake via the token"
            );
        });
    }
    let snap = stats.snapshot();
    assert_eq!(snap.retry_parks, u64::from(ROUNDS));
    assert_eq!(snap.wakeups, u64::from(ROUNDS), "every round woke by token");
    assert_eq!(snap.spurious_wakeups, 0, "no round slept out its timeout");
}

#[test]
fn a_commit_that_beats_the_registration_invalidates_instead_of_parking() {
    // The other side of the window: the writer finished before the
    // waiter registered, so the re-validation sees the new world and
    // the waiter must not park at all.
    let stats = StmStats::new();
    let outcome = wait::wait_for_locations(
        &mut core::iter::once(0x0DDB >> 1),
        &|| false, // the read set is already stale
        1,
        &stats,
    );
    assert_eq!(outcome, wait::WaitOutcome::Invalidated);
    let snap = stats.snapshot();
    assert_eq!(snap.retry_parks, 0, "an invalidated wait never parks");
    assert_eq!(snap.wakeups + snap.spurious_wakeups, 0);
}

#[test]
fn blocked_retry_wakes_on_a_committing_writer_every_backend() {
    for backend in BACKENDS {
        let at = runner(backend);
        let gate = TVar::new(0u64);
        let observed = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                at.run(Policy::Regular, |tx| {
                    let g = tx.get(&gate)?;
                    if g == 0 {
                        return tx.retry();
                    }
                    tx.set(&gate, g + 1)?;
                    Ok(g)
                })
            });
            // Let the consumer reach its park, then open the gate.
            std::thread::sleep(Duration::from_millis(2));
            at.run(Policy::Regular, |tx| tx.set(&gate, 7));
            consumer.join().expect("consumer thread")
        });
        assert_eq!(observed, 7, "{backend}: woken consumer reads the commit");
        assert_eq!(gate.load_atomic(), 8, "{backend}");
        let snap = at.stats();
        assert!(snap.retry_parks >= 1, "{backend}: the consumer must park");
        assert_eq!(
            snap.wakeups + snap.spurious_wakeups,
            snap.retry_parks,
            "{backend}: every park ends in exactly one filed outcome: {snap:?}"
        );
    }
}

#[test]
fn one_commit_wakes_the_whole_parked_crowd() {
    const CROWD: usize = 8;
    let at = runner("tl2");
    let gate = TVar::new(0u64);
    std::thread::scope(|scope| {
        let waiters: Vec<_> = (0..CROWD)
            .map(|_| {
                scope.spawn(|| {
                    at.run(Policy::Regular, |tx| {
                        let g = tx.get(&gate)?;
                        if g == 0 {
                            return tx.retry();
                        }
                        Ok(g)
                    })
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(3));
        at.run(Policy::Regular, |tx| tx.set(&gate, 1));
        for w in waiters {
            assert_eq!(w.join().expect("waiter thread"), 1);
        }
    });
    let snap = at.stats();
    assert!(
        snap.retry_parks >= CROWD as u64,
        "every waiter parked at least once: {snap:?}"
    );
    assert_eq!(snap.wakeups + snap.spurious_wakeups, snap.retry_parks);
    assert!(
        snap.wakeups >= 1,
        "the commit woke parked waiters: {snap:?}"
    );
}

#[test]
fn one_notify_wakes_an_army_of_registered_waiters() {
    // The "millions of users" shape in miniature: a whole army parked
    // on one location, woken by a single commit's notify. Registration
    // is rendezvoused through `still_valid` (every waiter spins there
    // until the notify has fired), so each park finds its token already
    // deposited and the wake count is exact, not probabilistic.
    const ARMY: u32 = 100;
    const LOCATION: usize = 0xA43;
    let stats = StmStats::new();
    let registered = AtomicU32::new(0);
    let go = AtomicU32::new(0);
    std::thread::scope(|scope| {
        let waiters: Vec<_> = (0..ARMY)
            .map(|_| {
                scope.spawn(|| {
                    wait::wait_for_locations(
                        &mut core::iter::once(LOCATION),
                        &|| {
                            registered.fetch_add(1, Ordering::SeqCst);
                            while go.load(Ordering::SeqCst) == 0 {
                                std::thread::yield_now();
                            }
                            true
                        },
                        5,
                        &stats,
                    )
                })
            })
            .collect();
        while registered.load(Ordering::SeqCst) != ARMY {
            std::thread::yield_now();
        }
        wait::notify_commit(&|f| f(LOCATION));
        go.store(1, Ordering::SeqCst);
        for w in waiters {
            assert_eq!(w.join().expect("army waiter"), wait::WaitOutcome::Woken);
        }
    });
    let snap = stats.snapshot();
    assert_eq!(snap.retry_parks, u64::from(ARMY));
    assert_eq!(
        snap.wakeups,
        u64::from(ARMY),
        "one notify, whole army woken"
    );
    assert_eq!(snap.spurious_wakeups, 0);
}

#[test]
fn or_else_alternation_switches_branches_without_parking() {
    for backend in BACKENDS {
        let at = runner(backend);
        let gate = TVar::new(0u64);
        let out = at.or_else(
            Policy::Regular,
            |tx| {
                if tx.get(&gate)? == 0 {
                    return tx.retry();
                }
                Ok("primary")
            },
            |_tx| Ok("fallback"),
        );
        assert_eq!(out, "fallback", "{backend}");
        let snap = at.stats();
        assert_eq!(snap.explicit_retries(), 1, "{backend}");
        assert_eq!(
            snap.retry_parks, 0,
            "{backend}: a pending alternative suppresses the park"
        );
    }
}

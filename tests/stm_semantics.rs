//! Semantic invariants of the four STMs, exercised concurrently:
//!
//! * **conservation** — concurrent transfers between accounts never create
//!   or destroy money, and a regular (classic) read-only audit always
//!   observes the exact total;
//! * **pairwise elastic consistency** — an elastic transaction's window
//!   guarantees that *consecutive* reads are mutually consistent, which is
//!   precisely the guarantee list traversals rely on;
//! * **zero-sum pair** — two locations updated together keep their
//!   invariant under every STM.

use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::parallel::worker_threads;
use composing_relaxed_transactions::stm_core::{Stm, TVar, Transaction, TxKind};
use composing_relaxed_transactions::stm_lsa::Lsa;
use composing_relaxed_transactions::stm_swiss::Swiss;
use composing_relaxed_transactions::stm_tl2::Tl2;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ACCOUNTS: usize = 16;
const TOTAL: i64 = 1600;

fn bank_conservation<S: Stm + 'static>(stm: S) {
    let stm = Arc::new(stm);
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| TVar::new(TOTAL / ACCOUNTS as i64))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let mut movers = Vec::new();
    for t in 0..worker_threads(3) as u64 {
        let stm = Arc::clone(&stm);
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        movers.push(std::thread::spawn(move || {
            let mut s = 0x9E37_79B9u64 ^ t;
            while !stop.load(Ordering::Relaxed) {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let from = (s % ACCOUNTS as u64) as usize;
                let to = ((s >> 8) % ACCOUNTS as u64) as usize;
                if from == to {
                    continue;
                }
                stm.run(TxKind::Regular, |tx| {
                    let a = tx.read(&accounts[from])?;
                    let b = tx.read(&accounts[to])?;
                    if a > 0 {
                        tx.write(&accounts[from], a - 1)?;
                        tx.write(&accounts[to], b + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }

    // Auditor: classic read-only snapshots must always see TOTAL.
    for _ in 0..200 {
        let sum = stm.run(TxKind::Regular, |tx| {
            let mut sum = 0i64;
            for a in accounts.iter() {
                sum += tx.read(a)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, TOTAL, "{}: money created or destroyed", stm.name());
    }
    stop.store(true, Ordering::Relaxed);
    for m in movers {
        m.join().unwrap();
    }
    let final_sum: i64 = accounts.iter().map(TVar::load_atomic).sum();
    assert_eq!(final_sum, TOTAL);
}

#[test]
fn conservation_tl2() {
    bank_conservation(Tl2::new());
}

#[test]
fn conservation_lsa() {
    bank_conservation(Lsa::new());
}

#[test]
fn conservation_swiss() {
    bank_conservation(Swiss::new());
}

#[test]
fn conservation_oestm_regular() {
    bank_conservation(OeStm::new());
}

/// Two variables kept equal by every writer; an elastic reader reading
/// them back-to-back (both inside the window) must always see them equal
/// — the pairwise-consistency guarantee of the elastic window.
#[test]
fn elastic_window_pairwise_consistency() {
    let stm = Arc::new(OeStm::new());
    let x = Arc::new(TVar::new(0i64));
    let y = Arc::new(TVar::new(0i64));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (stm, x, y, stop) = (
            Arc::clone(&stm),
            Arc::clone(&x),
            Arc::clone(&y),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                stm.run(TxKind::Regular, |tx| {
                    tx.write(&*x, i)?;
                    tx.write(&*y, i)
                });
            }
        })
    };

    for _ in 0..20_000 {
        let (a, b) = stm.run(TxKind::Elastic, |tx| {
            let a = tx.read(&*x)?;
            let b = tx.read(&*y)?; // consecutive: both in the window
            Ok((a, b))
        });
        assert_eq!(a, b, "consecutive elastic reads must be consistent");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// The same experiment with a *separating* read between the pair: the
/// first read may slide out of the (size-2) window, so the pair is allowed
/// to be inconsistent — this is exactly the relaxation elastic
/// transactions make, and this test documents it (we assert the writer's
/// invariant is still repaired by the final values, not that every pair
/// matched).
#[test]
fn elastic_relaxation_is_observable_beyond_the_window() {
    let stm = Arc::new(OeStm::new());
    let x = Arc::new(TVar::new(0i64));
    let pad = Arc::new(TVar::new(0i64));
    let y = Arc::new(TVar::new(0i64));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (stm, x, y, stop) = (
            Arc::clone(&stm),
            Arc::clone(&x),
            Arc::clone(&y),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                stm.run(TxKind::Regular, |tx| {
                    tx.write(&*x, i)?;
                    tx.write(&*y, i)
                });
            }
        })
    };

    let mut mismatches = 0u64;
    for _ in 0..20_000 {
        let (a, b) = stm.run(TxKind::Elastic, |tx| {
            let a = tx.read(&*x)?;
            let _ = tx.read(&*pad)?; // pushes x out of the 2-entry window
            let b = tx.read(&*y)?;
            Ok((a, b))
        });
        if a != b {
            mismatches += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    // No assertion on mismatches > 0 (timing-dependent), but the run must
    // complete without aborut storms and the final state is consistent.
    assert_eq!(x.load_atomic(), y.load_atomic());
    println!("observed {mismatches} relaxed (out-of-window) pairs");
}

/// Classic STMs must never show the relaxation: same separated-pair
/// experiment under TL2 must always see equal values.
#[test]
fn classic_stm_never_relaxes_pairs() {
    let stm = Arc::new(Tl2::new());
    let x = Arc::new(TVar::new(0i64));
    let pad = Arc::new(TVar::new(0i64));
    let y = Arc::new(TVar::new(0i64));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (stm, x, y, stop) = (
            Arc::clone(&stm),
            Arc::clone(&x),
            Arc::clone(&y),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                stm.run(TxKind::Regular, |tx| {
                    tx.write(&*x, i)?;
                    tx.write(&*y, i)
                });
            }
        })
    };

    for _ in 0..10_000 {
        let (a, b) = stm.run(TxKind::Regular, |tx| {
            let a = tx.read(&*x)?;
            let _ = tx.read(&*pad)?;
            let b = tx.read(&*y)?;
            Ok((a, b))
        });
        assert_eq!(a, b, "TL2 read-only transactions are serializable");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

//! Workspace smoke test: one commit round-trip and one abort round-trip
//! through every STM backend, driven exclusively through the
//! `stm_core::Stm` trait (plus `stm-boost`'s own entry point, which
//! deliberately does not implement the word-based trait).
//!
//! This is the canary for backend refactors: if a backend's trait
//! surface drifts — begin/commit protocol, rollback-on-abort, stats
//! accounting — this fails before any of the heavier semantic suites
//! run.

use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_boost::BoostedSet;
use composing_relaxed_transactions::stm_core::{
    RunError, Stm, StmConfig, TVar, Transaction, TxKind,
};
use composing_relaxed_transactions::stm_lsa::Lsa;
use composing_relaxed_transactions::stm_swiss::Swiss;
use composing_relaxed_transactions::stm_tl2::Tl2;

/// Commit path: read-modify-write two variables, check values and stats.
fn commit_round_trip<S: Stm>(stm: &S, kind: TxKind) {
    let a = TVar::new(1i64);
    let b = TVar::new(2i64);
    let sum = stm.run(kind, |tx| {
        let va = tx.read(&a)?;
        let vb = tx.read(&b)?;
        tx.write(&a, va + 10)?;
        tx.write(&b, vb + 20)?;
        Ok(va + vb)
    });
    assert_eq!(sum, 3, "{}: body must see initial values", stm.name());
    assert_eq!(a.load_atomic(), 11, "{}: write-back of a", stm.name());
    assert_eq!(b.load_atomic(), 22, "{}: write-back of b", stm.name());
    let snap = stm.stats();
    assert_eq!(snap.commits, 1, "{}: exactly one commit", stm.name());
    assert_eq!(
        snap.aborts(),
        0,
        "{}: no aborts on the happy path",
        stm.name()
    );
}

/// Abort path: a transaction that writes and then explicitly retries must
/// leave no trace, and an unwakeable retry surfaces `WouldBlockForever`.
fn abort_round_trip<S: Stm>(stm: &S, kind: TxKind) {
    let v = TVar::new(7u64);
    let result: Result<(), RunError> = stm.try_run(kind, |tx| {
        tx.write(&v, 999)?;
        tx.retry()
    });
    assert!(
        matches!(result, Err(RunError::WouldBlockForever { .. })),
        "{}: a retry that read nothing can never be woken",
        stm.name()
    );
    assert_eq!(
        v.load_atomic(),
        7,
        "{}: aborted writes must roll back",
        stm.name()
    );
    let snap = stm.stats();
    assert!(
        snap.explicit_retries() >= 1,
        "{}: retry accounted in its own category",
        stm.name()
    );
    assert_eq!(
        snap.aborts(),
        0,
        "{}: a user-level retry must not count as a conflict abort",
        stm.name()
    );
}

fn smoke<S: Stm>(stm: &S, kind: TxKind) {
    commit_round_trip(stm, kind);
    abort_round_trip(stm, kind);
}

/// Zero retries so the abort round-trip terminates deterministically.
fn no_retry() -> StmConfig {
    StmConfig::default().with_max_retries(0)
}

#[test]
fn tl2_commit_and_abort() {
    smoke(&Tl2::with_config(no_retry()), TxKind::Regular);
}

#[test]
fn lsa_commit_and_abort() {
    smoke(&Lsa::with_config(no_retry()), TxKind::Regular);
}

#[test]
fn swiss_commit_and_abort() {
    smoke(&Swiss::with_config(no_retry()), TxKind::Regular);
}

#[test]
fn oestm_regular_commit_and_abort() {
    smoke(&OeStm::with_config(no_retry()), TxKind::Regular);
}

#[test]
fn oestm_elastic_commit_and_abort() {
    smoke(&OeStm::with_config(no_retry()), TxKind::Elastic);
}

#[test]
fn estm_compat_commit_and_abort() {
    smoke(&OeStm::estm_compat_with_config(no_retry()), TxKind::Elastic);
}

/// The boosted backend has its own transaction type (abstract locks over
/// a linearizable base), so it is smoked through its own API.
#[test]
fn boosted_commit_and_abort() {
    let set = BoostedSet::new();
    assert!(set.run(|tx| tx.add(5)));
    assert!(set.run(|tx| tx.contains(5)));
    // Abort path: a child inserts, then the parent retries once; the
    // undo log must remove the child's insert on the way out.
    let mut attempts = 0;
    let committed = set.run(|tx| {
        attempts += 1;
        tx.child(|t| t.add(6))?;
        if attempts == 1 {
            return tx.retry();
        }
        Ok(true)
    });
    assert!(committed);
    assert_eq!(attempts, 2, "explicit retry must re-run the body");
    assert!(
        set.run(|tx| tx.contains(6)),
        "second attempt's add persists"
    );
    assert_eq!(set.locks().held(), 0, "no abstract locks leak");
}

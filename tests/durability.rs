//! Durability under fire: the CommitHook seam, the group-committed WAL,
//! and recovery — proven by exhaustive crash-point injection.
//!
//! The centerpiece sweeps **every byte offset** of a real WAL produced
//! by every registered backend: for each prefix `W[..cut]` it recovers a
//! fresh replica and checks the rebuilt image equals an independent
//! replay of the longest clean record prefix — a crash at *any* instant
//! loses at most the in-flight suffix, never a committed record, and a
//! torn tail is truncated with a diagnostic rather than guessed at.
//!
//! Around it: hook-contract checks (fires once per top-level update
//! commit, never for read-only transactions, retried branches, or child
//! commits), fsync-failure degradation (sticky poison, memory-only
//! continuation, clean durable prefix), bit-flip corruption (typed
//! verdict, clean-prefix replay), and a checkpoint/crash/reopen
//! generation cycle including a crash between seal and fold.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::stm_core::api::{Atomic, Policy};
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::hook::{CommitHook, WriteRecord};
use composing_relaxed_transactions::stm_core::{StmConfig, TVar, Transaction, TxKind};
use durable::record::{self, Record};
use durable::wal::WAL_FILE;
use durable::{recover, BitFlip, DurableStore, FaultPlan, FaultVfs, MemVfs, Vfs};

const BACKENDS: [&str; 6] = ["tl2", "lsa", "swiss", "oe", "oe-estm-compat", "boost"];
const VARS: usize = 8;
const PER_VAR: u64 = 100;
const TOTAL: u64 = VARS as u64 * PER_VAR;

/// Replay records the way recovery does: absolute words, log order.
fn replay(records: &[Record]) -> BTreeMap<u64, u64> {
    let mut values = BTreeMap::new();
    for rec in records {
        for &(key, word) in &rec.writes {
            values.insert(key, word);
        }
    }
    values
}

/// One observed firing: the commit version and its `(id, word)` pairs.
type ObservedCommit = (u64, Vec<(usize, u64)>);

/// A hook that records every firing for the contract checks.
#[derive(Default)]
struct CountingHook {
    fires: AtomicU64,
    records: Mutex<Vec<ObservedCommit>>,
}

impl CommitHook for CountingHook {
    fn on_commit(&self, record: &WriteRecord<'_>) {
        self.fires.fetch_add(1, Ordering::SeqCst);
        let mut writes = Vec::new();
        record.for_each(&mut |id, word| writes.push((id, word)));
        assert_eq!(writes.len(), record.len(), "len() must match iteration");
        self.records
            .lock()
            .unwrap()
            .push((record.version(), writes));
    }
}

#[test]
fn hook_fires_once_per_toplevel_update_commit_on_every_backend() {
    let registry = backend_registry();
    for name in BACKENDS {
        let hook = Arc::new(CountingHook::default());
        let backend = registry
            .build(name, StmConfig::default().with_commit_hook(hook.clone()))
            .unwrap();
        let x = TVar::new(1u64);
        let y = TVar::new(2u64);

        // Read-only transactions never fire the hook.
        let got = backend.run(TxKind::Regular, |tx| tx.get(&x));
        assert_eq!(got, 1);
        assert_eq!(
            hook.fires.load(Ordering::SeqCst),
            0,
            "{name}: read-only fired"
        );

        // One update with a child: exactly one fire, at the top-level
        // commit, covering the merged write set.
        backend.run(TxKind::Regular, |tx| {
            tx.set(&x, 10)?;
            tx.child(TxKind::Regular, |tx| tx.set(&y, 20))
        });
        assert_eq!(
            hook.fires.load(Ordering::SeqCst),
            1,
            "{name}: child or extra fire"
        );

        let records = hook.records.lock().unwrap();
        let (version, writes) = &records[0];
        let ids: BTreeSet<usize> = writes.iter().map(|&(id, _)| id).collect();
        let expect: BTreeSet<usize> = [x.core().id(), y.core().id()].into();
        assert_eq!(ids, expect, "{name}: write set mismatch");
        // Duplicates are allowed (boost logs per acquisition); the last
        // word per location must be the committed one.
        let mut last = BTreeMap::new();
        for &(id, word) in writes {
            last.insert(id, word);
        }
        assert_eq!(last[&x.core().id()], 10, "{name}");
        assert_eq!(last[&y.core().id()], 20, "{name}");
        if name == "boost" {
            assert_eq!(
                *version, 0,
                "boost never ticks the clock; version is advisory"
            );
        } else {
            assert!(
                *version > 0,
                "{name}: commit version must be a real clock stamp"
            );
        }
    }
}

#[test]
fn hook_skips_retried_branches_and_aborted_attempts() {
    let registry = backend_registry();
    for name in BACKENDS {
        let hook = Arc::new(CountingHook::default());
        let at = Atomic::new(
            registry
                .build(name, StmConfig::default().with_commit_hook(hook.clone()))
                .unwrap(),
        );
        let gate = TVar::new(0u64);
        let out = TVar::new(0u64);
        // The primary branch writes, then retries: its tentative write
        // set is discarded and must never reach the hook. Only the
        // committing fallback fires.
        let picked = at.or_else(
            Policy::Regular,
            |tx| {
                tx.set(&out, 111)?;
                if tx.get(&gate)? == 0 {
                    return tx.retry();
                }
                Ok("primary")
            },
            |tx| {
                tx.set(&out, 222)?;
                Ok("fallback")
            },
        );
        assert_eq!(picked, "fallback", "{name}");
        assert_eq!(hook.fires.load(Ordering::SeqCst), 1, "{name}");
        let records = hook.records.lock().unwrap();
        let mut last = BTreeMap::new();
        for &(id, word) in &records[0].1 {
            last.insert(id, word);
        }
        assert_eq!(
            last.get(&out.core().id()),
            Some(&222),
            "{name}: retried branch's write leaked into the hook"
        );
    }
}

/// Random zero-sum transfers between `vars`, preserving `TOTAL`.
fn transfer_loop(backend: &Backend, vars: &[TVar<u64>], thread_seed: u64, rounds: usize) {
    let mut seed = 0x9E37_79B9u64.wrapping_mul(thread_seed + 1) | 1;
    for _ in 0..rounds {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let from = (seed % VARS as u64) as usize;
        let to = ((seed >> 16) % VARS as u64) as usize;
        if from == to {
            continue;
        }
        backend.run(TxKind::Regular, |tx| {
            let a = tx.get(&vars[from])?;
            let b = tx.get(&vars[to])?;
            if a > 0 {
                tx.set(&vars[from], a - 1)?;
                tx.set(&vars[to], b + 1)?;
            }
            Ok(())
        });
    }
}

/// Run a multi-threaded durable transfer workload for `name` against
/// `vfs`, then crash the machine and return the surviving WAL bytes.
fn run_durable_workload(name: &str, mem: &Arc<MemVfs>) -> Vec<u8> {
    let (store, recovered) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
    assert!(recovered.values.is_empty(), "{name}: fresh store not empty");
    let backend = backend_registry()
        .build(name, StmConfig::default().with_commit_hook(store.hook()))
        .unwrap();
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
    for (key, var) in vars.iter().enumerate() {
        store.heap().register(key as u64, var.core());
    }
    // Seed every account in one durable transaction so record 0 covers
    // all keys.
    backend.run(TxKind::Regular, |tx| {
        for var in &vars {
            tx.set(var, PER_VAR)?;
        }
        Ok(())
    });
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let backend = &backend;
            let vars = &vars;
            s.spawn(move || transfer_loop(backend, vars, t, 25));
        }
    });
    assert!(
        store.io_error().is_none(),
        "{name}: WAL poisoned during workload"
    );
    // `Wal::append` returns only after fsync, so the crash loses nothing
    // that a transaction observed as committed-durable.
    mem.crash();
    mem.durable_bytes(WAL_FILE)
}

#[test]
fn crash_point_exhaustion_recovers_every_wal_prefix_on_every_backend() {
    for name in BACKENDS {
        let mem = Arc::new(MemVfs::new());
        let wal_bytes = run_durable_workload(name, &mem);
        assert!(!wal_bytes.is_empty(), "{name}: no WAL written");

        // The full durable log replays to a complete, money-conserving
        // image.
        let (all_records, _, end_err) = record::decode_stream(&wal_bytes);
        assert!(
            end_err.is_none(),
            "{name}: durable log has a bad tail: {end_err:?}"
        );
        let full = replay(&all_records);
        assert_eq!(full.len(), VARS, "{name}: keys missing from replay");
        assert_eq!(
            full.values().sum::<u64>(),
            TOTAL,
            "{name}: money not conserved"
        );

        // Kill the machine at every byte offset of the log and recover.
        for cut in 0..=wal_bytes.len() {
            let replica = MemVfs::with_file(WAL_FILE, wal_bytes[..cut].to_vec());
            let rec = recover(&replica).unwrap();
            let (records, clean, err) = record::decode_stream(&wal_bytes[..cut]);
            assert_eq!(
                rec.values,
                replay(&records),
                "{name} cut {cut}: image is not the longest clean record prefix"
            );
            assert_eq!(
                rec.records_applied,
                records.len() as u64,
                "{name} cut {cut}"
            );
            match err {
                None => assert!(
                    rec.notes.is_empty(),
                    "{name} cut {cut}: spurious diagnostics {:?}",
                    rec.notes
                ),
                Some(e) => {
                    assert!(
                        e.is_truncation(),
                        "{name} cut {cut}: a crash prefix misread as corruption: {e}"
                    );
                    assert!(
                        rec.notes.iter().any(|n| n.contains("torn tail")),
                        "{name} cut {cut}: missing torn-tail diagnostic"
                    );
                    assert_eq!(
                        replica.read(WAL_FILE).unwrap().len(),
                        clean,
                        "{name} cut {cut}: tail not physically truncated"
                    );
                    // Double crash: recovering the repaired replica again
                    // reaches the same image, now without diagnostics.
                    let rec2 = recover(&replica).unwrap();
                    assert_eq!(rec2.values, rec.values, "{name} cut {cut}: not idempotent");
                    assert!(rec2.notes.is_empty(), "{name} cut {cut}");
                }
            }
        }
    }
}

#[test]
fn fsync_failure_poisons_durability_while_commits_continue_in_memory() {
    let mem = Arc::new(MemVfs::new());
    let faulty = Arc::new(FaultVfs::new(
        mem.clone(),
        FaultPlan {
            fail_sync_from: Some(3),
            ..FaultPlan::default()
        },
    ));
    let (store, _) = DurableStore::open(faulty as Arc<dyn Vfs>).unwrap();
    let backend = backend_registry()
        .build("tl2", StmConfig::default().with_commit_hook(store.hook()))
        .unwrap();
    let v = TVar::new(0u64);
    store.heap().register(1, v.core());
    for i in 1..=10u64 {
        backend.run(TxKind::Regular, |tx| tx.set(&v, i));
    }
    // The STM is unaffected: commits keep landing in memory...
    assert_eq!(v.load_atomic(), 10);
    // ...but durability degraded, stickily, and says so.
    let err = store.io_error().expect("fsync failure must surface");
    assert!(err.contains("injected fault"), "{err}");
    // The durable prefix is exactly the two successfully fsynced batches
    // (single-threaded appends flush one record per batch) and recovers
    // without diagnostics.
    mem.crash();
    let rec = recover(mem.as_ref()).unwrap();
    assert!(rec.notes.is_empty(), "{:?}", rec.notes);
    assert_eq!(rec.values, [(1u64, 2u64)].into());
}

#[test]
fn bit_flip_corruption_ends_replay_with_a_typed_diagnostic() {
    let mem = Arc::new(MemVfs::new());
    let wal_bytes = run_durable_workload("lsa", &mem);
    let (records, _, _) = record::decode_stream(&wal_bytes);
    assert!(records.len() >= 2);
    // Corrupt a payload byte of the second record via the fault layer's
    // read-path bit flip.
    let first_len =
        record::HEADER_LEN + record::PAYLOAD_FIXED_LEN + record::PAIR_LEN * records[0].writes.len();
    let replica = Arc::new(MemVfs::with_file(WAL_FILE, wal_bytes.clone()));
    let flipping = FaultVfs::new(
        replica.clone(),
        FaultPlan {
            flip_on_read: Some(BitFlip {
                file: WAL_FILE.to_string(),
                offset: first_len + record::HEADER_LEN + 3,
                bit: 5,
            }),
            ..FaultPlan::default()
        },
    );
    let rec = recover(&flipping).unwrap();
    // Only the record before the flip survives; the verdict is
    // corruption, not a tear; the bad suffix is gone from the file.
    assert_eq!(rec.values, replay(&records[..1]));
    assert!(
        rec.notes.iter().any(|n| n.contains("corrupt record")),
        "{:?}",
        rec.notes
    );
    assert_eq!(replica.read(WAL_FILE).unwrap().len(), first_len);
}

#[test]
fn checkpoint_crash_reopen_cycle_preserves_state_across_generations() {
    let mem = Arc::new(MemVfs::new());
    let registry = backend_registry();

    // Generation 1: seed, transfer, checkpoint, transfer more, crash.
    {
        let (store, _) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
        let backend = registry
            .build("swiss", StmConfig::default().with_commit_hook(store.hook()))
            .unwrap();
        let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
        for (key, var) in vars.iter().enumerate() {
            store.heap().register(key as u64, var.core());
        }
        backend.run(TxKind::Regular, |tx| {
            for var in &vars {
                tx.set(var, PER_VAR)?;
            }
            Ok(())
        });
        transfer_loop(&backend, &vars, 7, 20);
        let report = store.checkpoint().unwrap();
        assert_eq!(report.snapshot_entries, VARS);
        transfer_loop(&backend, &vars, 8, 20);
    }
    mem.crash();

    // Generation 2: recover (snapshot + post-checkpoint log), reinstall
    // into fresh TVars, keep going, then die between seal and fold.
    {
        let (store, recovered) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
        assert_eq!(recovered.snapshot_entries, VARS);
        assert_eq!(recovered.values.len(), VARS);
        assert_eq!(recovered.values.values().sum::<u64>(), TOTAL);
        let backend = registry
            .build("swiss", StmConfig::default().with_commit_hook(store.hook()))
            .unwrap();
        let vars: Vec<TVar<u64>> = (0..VARS).map(|_| TVar::new(0)).collect();
        for (key, var) in vars.iter().enumerate() {
            store.heap().register(key as u64, var.core());
            vars[key].store_atomic(recovered.values[&(key as u64)], recovered.last_version);
        }
        transfer_loop(&backend, &vars, 9, 20);
        // A checkpoint that dies right after sealing: wal → wal.old and
        // nothing else.
        store.wal().seal().unwrap();
    }
    mem.crash();

    // Generation 3: the interrupted checkpoint is repaired on recovery.
    let rec = recover(mem.as_ref()).unwrap();
    assert!(
        rec.notes
            .iter()
            .any(|n| n.contains("interrupted checkpoint")),
        "{:?}",
        rec.notes
    );
    assert_eq!(rec.values.len(), VARS);
    assert_eq!(rec.values.values().sum::<u64>(), TOTAL);
}

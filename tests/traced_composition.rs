//! Implementation ↔ theory: record *live* OE-STM executions with the
//! `histories` recorder and check them against the paper's definitions.
//!
//! The scenario is Fig. 1 in miniature, with a real concurrent adversary
//! on a second thread (so the recorded history has two processes):
//!
//! * process 1 composes two children — read `y`, then write `x` —
//! * process 2 commits a write to `y` exactly between the two children
//!   (sequenced with channels, so the interleaving is deterministic).
//!
//! With outheritance ON, the recorded committed history must satisfy
//! Definition 4.1 and be weakly composable (Theorem 4.4 applied to a real
//! run). With outheritance OFF (E-STM mode), the recorded history must
//! violate Definition 4.1 and fail weak composability (the Theorem 4.3
//! phenomenon, observed in the wild rather than constructed).

use composing_relaxed_transactions::histories::{
    is_relax_serializable, is_weakly_composable, satisfies_outheritance, Composition, Event,
    Recorder,
};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::{Stm, TVar, Transaction, TxKind};
use std::sync::mpsc;
use std::sync::Arc;

/// Run the two-process scenario and return the recorder.
fn run_scenario(outheritance: bool) -> (Arc<Recorder>, (u64, u64)) {
    let recorder = Arc::new(Recorder::new());
    let stm = if outheritance {
        OeStm::new()
    } else {
        OeStm::estm_compat()
    }
    .with_trace(
        recorder.clone() as Arc<dyn composing_relaxed_transactions::stm_core::trace::TraceSink>
    );
    let stm = Arc::new(stm);

    let x = Arc::new(TVar::new(0u64));
    let y = Arc::new(TVar::new(0u64));

    let (to_adversary, adversary_go) = mpsc::channel::<()>();
    let (to_composer, composer_go) = mpsc::channel::<()>();

    let adversary = {
        let stm = Arc::clone(&stm);
        let y = Arc::clone(&y);
        std::thread::spawn(move || {
            adversary_go.recv().unwrap();
            stm.run(TxKind::Elastic, |tx| {
                let v = tx.read(&*y)?;
                tx.write(&*y, v + 1)
            });
            to_composer.send(()).unwrap();
        })
    };

    // The composition: child 1 reads y (the containment check of Fig. 1);
    // child 2 models the insert — like a list insert whose traversal
    // passes the node of y, it reads y again and then writes x.
    let mut first = true;
    let observed = stm.run(TxKind::Elastic, |tx| {
        let ry1 = tx.child(TxKind::Elastic, |tx| tx.read(&*y))?;
        if first {
            first = false;
            to_adversary.send(()).unwrap();
            composer_go.recv().unwrap();
        }
        let ry2 = tx.child(TxKind::Elastic, |tx| {
            let ry2 = tx.read(&*y)?;
            tx.write(&*x, 10 + ry2)?;
            Ok(ry2)
        })?;
        Ok((ry1, ry2))
    });
    adversary.join().unwrap();
    (recorder, observed)
}

/// The composition = the committed children of the composing process:
/// transactions that performed operations, executed by the process owning
/// the most transactions (process 1 runs parent + children).
fn committed_children(h: &composing_relaxed_transactions::histories::History) -> Composition {
    // The composing process is the one with the most begin events.
    let mut counts = std::collections::HashMap::new();
    for e in &h.events {
        if let Event::Begin { p, .. } = *e {
            *counts.entry(p).or_insert(0usize) += 1;
        }
    }
    let (&composer, _) = counts.iter().max_by_key(|&(_, c)| *c).unwrap();
    let committed = h.committed();
    let members: Vec<u32> = h
        .events
        .iter()
        .filter_map(|e| match *e {
            Event::Begin { t, p } if p == composer => Some(t),
            _ => None,
        })
        .filter(|t| committed.contains(t))
        .filter(|&t| {
            h.events
                .iter()
                .any(|e| matches!(*e, Event::Op { t: t2, .. } if t2 == t))
        })
        .collect();
    Composition::new(members)
}

#[test]
fn recorded_histories_are_well_formed() {
    for outherit in [true, false] {
        let (rec, _) = run_scenario(outherit);
        let h = rec.history().committed_projection();
        assert_eq!(
            h.well_formed(),
            Ok(()),
            "tracer must emit model-conformant events (outheritance={outherit})"
        );
        // The raw interleaving need not be relax-serial (invisible reads
        // overlap across processes); relax-SERIALIZABILITY is the property.
        assert!(
            is_relax_serializable(&h),
            "live histories are relax-serializable (outheritance={outherit})"
        );
    }
}

#[test]
fn oestm_run_satisfies_outheritance_and_is_weakly_composable() {
    let (rec, observed) = run_scenario(true);
    assert_eq!(
        observed,
        (1, 1),
        "OE-STM must retry; both children then observe the same y"
    );
    let h = rec.history().committed_projection();
    let c = committed_children(&h);
    assert!(c.is_valid(&h), "children form a composition: {c:?}");
    assert!(
        satisfies_outheritance(&h, &c),
        "OE-STM's outherit() must produce Definition 4.1 histories"
    );
    assert!(
        is_weakly_composable(&h, &c),
        "Theorem 4.4 on a live run: outheritance ⇒ weak composability"
    );
}

#[test]
fn estm_run_violates_outheritance_and_weak_composability() {
    let (rec, observed) = run_scenario(false);
    assert_eq!(
        observed,
        (0, 1),
        "E-STM commits a composition whose children saw different worlds"
    );
    let h = rec.history().committed_projection();
    let c = committed_children(&h);
    assert!(c.is_valid(&h));
    assert!(
        !satisfies_outheritance(&h, &c),
        "E-STM releases the child's protected set at child commit"
    );
    assert!(
        !is_weakly_composable(&h, &c),
        "the Fig. 1 interleaving is not weakly composable"
    );
}

#[test]
fn abort_events_are_recorded_and_filtered() {
    let (rec, _) = run_scenario(true);
    assert!(
        !rec.raw_history().aborted().is_empty(),
        "the OE-STM scenario aborts at least once"
    );
    let h = rec.history();
    assert!(h.aborted().is_empty(), "history() removes aborted attempts");
}

//! The full matrix: every collection under every STM, hammered
//! concurrently, with global invariants checked at the end.
//!
//! Invariants per (structure, STM) cell:
//! * **balance**: initial size + (successful adds − successful removes)
//!   equals the final size — no lost or duplicated updates;
//! * **membership**: a key is present iff its per-key net balance says so
//!   (each key is owned by one thread, so per-key history is sequential);
//! * **composed ops**: `add_all`/`remove_all` report change consistently
//!   with the final state.

use composing_relaxed_transactions::cec::{HashSet, LinkedListSet, SetExt, SkipListSet, TxSet};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::api::{Atomic, AtomicBackend};
use composing_relaxed_transactions::stm_lsa::Lsa;
use composing_relaxed_transactions::stm_swiss::Swiss;
use composing_relaxed_transactions::stm_tl2::Tl2;
use std::sync::Arc;

use composing_relaxed_transactions::stm_core::parallel::worker_threads;

const MAX_THREADS: usize = 4;
const OPS_PER_THREAD: usize = 800;
/// Keys per thread (disjoint ranges → per-key sequential histories).
const KEYS_PER_THREAD: i64 = 16;

fn stress<B, C>(stm: Arc<Atomic<B>>, set: Arc<C>) -> (i64, Vec<(i64, bool)>)
where
    B: AtomicBackend + 'static,
    C: TxSet + Send + Sync + 'static,
{
    let mut handles = Vec::new();
    for t in 0..worker_threads(MAX_THREADS) {
        let stm = Arc::clone(&stm);
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            let base = t as i64 * 1000;
            let mut net = 0i64;
            let mut present = vec![false; KEYS_PER_THREAD as usize];
            let mut state = 0x243F_6A88u64 ^ t as u64; // xorshift
            for i in 0..OPS_PER_THREAD {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k_off = (state % KEYS_PER_THREAD as u64) as i64;
                let k = base + k_off;
                match i % 4 {
                    0 => {
                        let added = set.add(&*stm, k);
                        assert_eq!(
                            added, !present[k_off as usize],
                            "add({k}) disagreed with per-key sequential history"
                        );
                        if added {
                            net += 1;
                            present[k_off as usize] = true;
                        }
                    }
                    1 => {
                        let removed = set.remove(&*stm, k);
                        assert_eq!(
                            removed, present[k_off as usize],
                            "remove({k}) disagreed with per-key sequential history"
                        );
                        if removed {
                            net -= 1;
                            present[k_off as usize] = false;
                        }
                    }
                    2 => {
                        assert_eq!(
                            set.contains(&*stm, k),
                            present[k_off as usize],
                            "contains({k}) disagreed with per-key sequential history"
                        );
                    }
                    _ => {
                        // Composed op across the thread's own keys.
                        let pair = [base + ((k_off + 1) % KEYS_PER_THREAD), k];
                        if i % 8 == 3 {
                            set.add_all(&*stm, &pair);
                            for p in pair {
                                let off = (p - base) as usize;
                                if !present[off] {
                                    net += 1;
                                    present[off] = true;
                                }
                            }
                        } else {
                            set.remove_all(&*stm, &pair);
                            for p in pair {
                                let off = (p - base) as usize;
                                if present[off] {
                                    net -= 1;
                                    present[off] = false;
                                }
                            }
                        }
                    }
                }
            }
            let finals: Vec<(i64, bool)> = (0..KEYS_PER_THREAD)
                .map(|o| (base + o, present[o as usize]))
                .collect();
            (net, finals)
        }));
    }
    let mut total_net = 0i64;
    let mut finals = Vec::new();
    for h in handles {
        let (net, f) = h.join().unwrap();
        total_net += net;
        finals.extend(f);
    }
    (total_net, finals)
}

fn check_cell<B, C>(stm: Atomic<B>, set: C, name: &str)
where
    B: AtomicBackend + 'static,
    C: TxSet + Send + Sync + 'static,
{
    let stm = Arc::new(stm);
    let set = Arc::new(set);
    let (net, finals) = stress(Arc::clone(&stm), Arc::clone(&set));
    assert_eq!(
        set.size(&*stm) as i64,
        net,
        "{name}: final size must equal the net of successful updates"
    );
    for (k, should_be_present) in finals {
        assert_eq!(
            set.contains(&*stm, k),
            should_be_present,
            "{name}: final membership of {k} wrong"
        );
    }
    assert!(stm.stats().commits > 0);
}

macro_rules! cell {
    ($test:ident, $stm:expr, $set:expr) => {
        #[test]
        fn $test() {
            check_cell($stm, $set, stringify!($test));
        }
    };
}

cell!(
    linkedlist_under_tl2,
    Atomic::new(Tl2::new()),
    LinkedListSet::new()
);
cell!(
    linkedlist_under_lsa,
    Atomic::new(Lsa::new()),
    LinkedListSet::new()
);
cell!(
    linkedlist_under_swiss,
    Atomic::new(Swiss::new()),
    LinkedListSet::new()
);
cell!(
    linkedlist_under_oestm,
    Atomic::new(OeStm::new()),
    LinkedListSet::new()
);

cell!(
    skiplist_under_tl2,
    Atomic::new(Tl2::new()),
    SkipListSet::new()
);
cell!(
    skiplist_under_lsa,
    Atomic::new(Lsa::new()),
    SkipListSet::new()
);
cell!(
    skiplist_under_swiss,
    Atomic::new(Swiss::new()),
    SkipListSet::new()
);
cell!(
    skiplist_under_oestm,
    Atomic::new(OeStm::new()),
    SkipListSet::new()
);

cell!(hashset_under_tl2, Atomic::new(Tl2::new()), HashSet::new(4));
cell!(hashset_under_lsa, Atomic::new(Lsa::new()), HashSet::new(4));
cell!(
    hashset_under_swiss,
    Atomic::new(Swiss::new()),
    HashSet::new(4)
);
cell!(
    hashset_under_oestm,
    Atomic::new(OeStm::new()),
    HashSet::new(4)
);

// E-STM compatibility mode is safe for UNCOMPOSED single ops (each op is
// its own transaction; early release only affects children) — and the
// composed ops in this stress touch thread-disjoint keys, so even the
// non-outheriting mode must keep these invariants.
cell!(
    linkedlist_under_estm,
    Atomic::new(OeStm::estm_compat()),
    LinkedListSet::new()
);

//! Semantics parity for the dyn-erased backend layer: the commit/abort/
//! composition guarantees of `tests/stm_semantics.rs`, re-run through
//! `Backend`/`DynTxn` for every registered backend. Erasure must change
//! dispatch, never semantics.

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::cec::{move_entry, total_size, LinkedListSet, SetExt};
use composing_relaxed_transactions::stm_core::api::Atomic;
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::parallel::worker_threads;
use composing_relaxed_transactions::stm_core::{
    Abort, AbortReason, StmConfig, TVar, Transaction, TxKind,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// All five registered backends ("tl2", "lsa", "swiss", "oe",
/// "oe-estm-compat"), freshly built.
fn backends() -> Vec<Backend> {
    let reg = backend_registry();
    assert_eq!(reg.names().len(), 6, "expected all six backends wired");
    reg.build_all()
}

/// The composition-sound backends (everything except the deliberately
/// broken E-STM compatibility mode).
fn sound_backends() -> Vec<Backend> {
    backends()
        .into_iter()
        .filter(|b| b.key() != "oe-estm-compat")
        .collect()
}

// ---------------------------------------------------------------------
// Commit/abort basics, erased.
// ---------------------------------------------------------------------

#[test]
fn read_your_own_write_every_backend() {
    for b in backends() {
        let v = TVar::new(1u64);
        let out = b.run(TxKind::Regular, |tx| {
            tx.write(&v, 5)?;
            tx.read(&v)
        });
        assert_eq!(out, 5, "{}", b.key());
        assert_eq!(v.load_atomic(), 5, "{}", b.key());
        assert_eq!(b.stats().commits, 1, "{}", b.key());
    }
}

#[test]
fn aborted_attempt_leaves_no_trace_every_backend() {
    for b in backends() {
        let reg = backend_registry();
        let b = reg
            .build(b.key(), StmConfig::default().with_max_retries(0))
            .unwrap();
        let v = TVar::new(1u64);
        let r = b.try_run(TxKind::Regular, |tx| {
            tx.write(&v, 99)?;
            Err::<(), _>(Abort::new(AbortReason::Explicit))
        });
        assert!(r.is_err(), "{}", b.key());
        assert_eq!(v.load_atomic(), 1, "{}: abort must roll back", b.key());
    }
}

#[test]
fn explicit_retry_then_commit_every_backend() {
    for b in backends() {
        let v = TVar::new(0i64);
        let mut failed = false;
        b.run(TxKind::Regular, |tx| {
            let cur = tx.read(&v)?;
            tx.write(&v, cur + 9)?;
            if !failed {
                failed = true;
                return tx.retry();
            }
            Ok(())
        });
        assert_eq!(v.load_atomic(), 9, "{}", b.key());
        let snap = b.stats();
        assert!(snap.explicit_retries() >= 1, "{}", b.key());
        assert_eq!(
            snap.aborts(),
            0,
            "{}: a user-level retry must not count as a conflict abort",
            b.key()
        );
    }
}

// ---------------------------------------------------------------------
// Conservation: concurrent transfers under a classic read-only audit
// (the bank test of the static suite).
// ---------------------------------------------------------------------

const ACCOUNTS: usize = 16;
const TOTAL: i64 = 1600;

fn bank_conservation(b: Backend) {
    let key = b.key().to_string();
    let b = Arc::new(b);
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| TVar::new(TOTAL / ACCOUNTS as i64))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    let mut movers = Vec::new();
    for t in 0..worker_threads(3) as u64 {
        let b = Arc::clone(&b);
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        movers.push(std::thread::spawn(move || {
            let mut s = 0x9E37_79B9u64 ^ t;
            while !stop.load(Ordering::Relaxed) {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let from = (s % ACCOUNTS as u64) as usize;
                let to = ((s >> 8) % ACCOUNTS as u64) as usize;
                if from == to {
                    continue;
                }
                b.run(TxKind::Regular, |tx| {
                    let a = tx.read(&accounts[from])?;
                    let c = tx.read(&accounts[to])?;
                    if a > 0 {
                        tx.write(&accounts[from], a - 1)?;
                        tx.write(&accounts[to], c + 1)?;
                    }
                    Ok(())
                });
            }
        }));
    }

    // Auditor: classic read-only snapshots must always see TOTAL.
    for _ in 0..100 {
        let sum = b.run(TxKind::Regular, |tx| {
            let mut sum = 0i64;
            for a in accounts.iter() {
                sum += tx.read(a)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, TOTAL, "{key}: money created or destroyed");
    }
    stop.store(true, Ordering::Relaxed);
    for m in movers {
        m.join().unwrap();
    }
    let final_sum: i64 = accounts.iter().map(TVar::load_atomic).sum();
    assert_eq!(final_sum, TOTAL, "{key}");
}

#[test]
fn conservation_every_backend_erased() {
    // Regular transactions only — safe under every backend, including the
    // E-STM compatibility mode (the Fig. 1 bug needs *elastic children*).
    for b in backends() {
        bank_conservation(b);
    }
}

// ---------------------------------------------------------------------
// Elastic window semantics survive erasure (OE-STM).
// ---------------------------------------------------------------------

#[test]
fn elastic_window_pairwise_consistency_erased() {
    let b = Arc::new(backend_registry().build_default("oe").unwrap());
    let x = Arc::new(TVar::new(0i64));
    let y = Arc::new(TVar::new(0i64));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (b, x, y, stop) = (
            Arc::clone(&b),
            Arc::clone(&x),
            Arc::clone(&y),
            Arc::clone(&stop),
        );
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                b.run(TxKind::Regular, |tx| {
                    tx.write(&*x, i)?;
                    tx.write(&*y, i)
                });
            }
        })
    };

    for _ in 0..10_000 {
        let (a, c) = b.run(TxKind::Elastic, |tx| {
            let a = tx.read(&*x)?;
            let c = tx.read(&*y)?; // consecutive: both in the window
            Ok((a, c))
        });
        assert_eq!(a, c, "consecutive elastic reads must stay consistent");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

// ---------------------------------------------------------------------
// Composition through children, erased.
// ---------------------------------------------------------------------

#[test]
fn composed_set_ops_every_sound_backend() {
    for b in sound_backends() {
        let key = b.key().to_string();
        let at = Atomic::new(b);
        let set = LinkedListSet::new();
        assert!(set.add_all(&at, &[4, 2, 9]), "{key}");
        assert!(set.insert_if_absent(&at, 10, 99), "{key}");
        assert!(!set.insert_if_absent(&at, 20, 4), "{key}");
        assert!(set.remove_all(&at, &[2, 9]), "{key}");
        assert_eq!(set.size(&at), 2, "{key}");
        assert!(
            at.stats().child_commits >= 5,
            "{key}: composition must run as child transactions"
        );
    }
}

#[test]
fn concurrent_opposite_moves_never_deadlock_or_lose_erased() {
    // The paper's introduction example, through the erased layer, on
    // every sound backend: move(k→k') ∥ move(k'→k) cannot deadlock and
    // key 1 survives in exactly one of the two sets.
    for backend in sound_backends() {
        let key = backend.key().to_string();
        let b = Arc::new(Atomic::new(backend));
        let a: Arc<LinkedListSet> = Arc::new(LinkedListSet::new());
        let c: Arc<LinkedListSet> = Arc::new(LinkedListSet::new());
        a.add(&*b, 1);
        c.add(&*b, 2);
        let mut handles = Vec::new();
        for dir in 0..2 {
            let b = Arc::clone(&b);
            let a = Arc::clone(&a);
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    if dir == 0 {
                        move_entry(&*b, &*a, &*c, 1, 1);
                    } else {
                        move_entry(&*b, &*c, &*a, 1, 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let in_a = a.contains(&*b, 1);
        let in_c = c.contains(&*b, 1);
        assert!(in_a ^ in_c, "{key}: key 1 must live in exactly one set");
        assert!(c.contains(&*b, 2), "{key}");
        assert_eq!(total_size(&*b, &*a, &*c), 2, "{key}");
    }
}

#[test]
fn outheritance_counter_only_moves_under_oe() {
    // Parity with the static path's counters: the erased OE-STM outherits
    // on child commits; the erased classic STMs never do.
    for b in sound_backends() {
        let key = b.key().to_string();
        let at = Atomic::new(b);
        let set = LinkedListSet::new();
        set.add_all(&at, &[1, 2, 3]);
        let outherits = at.stats().outherits;
        if key == "oe" {
            assert!(outherits >= 3, "OE-STM must outherit each child");
        } else {
            assert_eq!(outherits, 0, "{key}: classic STMs never outherit");
        }
    }
}

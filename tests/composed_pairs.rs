//! Pair atomicity of composed bulk operations under real concurrency.
//!
//! A writer thread alternates `add_all(&[a, b])` / `remove_all(&[a, b])`.
//! Because the bulk operations are *compositions* (one section per key
//! made atomic by outheritance / flat nesting), an atomic observer must
//! always see `a` and `b` together: both present or both absent — never a
//! torn pair. This is exactly the `removeAll`/`addAll` atomicity that the
//! paper (Section VI) shows `java.util.concurrent` cannot provide ("may
//! lead to an inconsistent state where only one of the two integers is
//! present").
//!
//! The observer reads both memberships inside ONE regular transaction
//! composed of two `contains` sections — everything through the `atomic`
//! facade.

use composing_relaxed_transactions::cec::{HashSet, LinkedListSet, SetExt, SkipListSet, TxSet};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::api::{Atomic, AtomicBackend, Policy};
use composing_relaxed_transactions::stm_tl2::Tl2;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const A: i64 = 10;
const B: i64 = 20;
const OBSERVATIONS: usize = 400;

fn run_pair_test<B2, C>(at: Atomic<B2>, set: C)
where
    B2: AtomicBackend + 'static,
    C: TxSet + Send + Sync + 'static,
{
    let at = Arc::new(at);
    let set = Arc::new(set);
    // Background noise keys so traversals have something to walk past.
    for k in [1, 5, 15, 25, 30] {
        set.add(&*at, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let at = Arc::clone(&at);
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut inserting = true;
            while !stop.load(Ordering::Relaxed) {
                if inserting {
                    set.add_all(&*at, &[A, B]);
                } else {
                    set.remove_all(&*at, &[A, B]);
                }
                inserting = !inserting;
            }
            // Leave the pair present for the final check.
            set.add_all(&*at, &[A, B]);
        })
    };

    for _ in 0..OBSERVATIONS {
        let (has_a, has_b) = at.run(Policy::Regular, |tx| {
            let a = tx.section(Policy::Regular, |t| set.contains_in(t, A))?;
            let b = tx.section(Policy::Regular, |t| set.contains_in(t, B))?;
            Ok((a, b))
        });
        assert_eq!(
            has_a, has_b,
            "torn pair observed: a={has_a}, b={has_b} — composed bulk op not atomic"
        );
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    assert!(set.contains(&*at, A) && set.contains(&*at, B));
}

#[test]
fn pairs_never_tear_linkedlist_oestm() {
    run_pair_test(Atomic::new(OeStm::new()), LinkedListSet::new());
}

#[test]
fn pairs_never_tear_skiplist_oestm() {
    run_pair_test(Atomic::new(OeStm::new()), SkipListSet::new());
}

#[test]
fn pairs_never_tear_hashset_oestm() {
    // A and B land in different buckets: the composition spans buckets.
    run_pair_test(Atomic::new(OeStm::new()), HashSet::new(4));
}

#[test]
fn pairs_never_tear_linkedlist_tl2() {
    run_pair_test(Atomic::new(Tl2::new()), LinkedListSet::new());
}

#[test]
fn pairs_never_tear_hashset_tl2() {
    run_pair_test(Atomic::new(Tl2::new()), HashSet::new(4));
}

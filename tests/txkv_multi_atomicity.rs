//! MULTI atomicity for the txkv service layer: concurrent cross-shard
//! read-modify-write transactions against a single-threaded reference.
//!
//! The oracle trick: every MULTI in the battery is a *commutative
//! increment* (`Put(cur + 1)` over its key set), so any serialization of
//! the concurrent schedule produces the same final image — each key's
//! value must equal the number of MULTIs that touched it, its presence
//! bit must match `count > 0`, and the sharded `len()` must equal the
//! number of distinct keys. A torn MULTI (one key incremented, a
//! same-transaction sibling missed) breaks the count exactly, which is
//! what makes the reference map a complete atomicity oracle.
//!
//! The battery sweeps all six registry backends × every CM policy, a
//! transfer-sum invariant under racing cross-shard MULTIs, and a durable
//! kill-and-recover cycle proving the recovered image equals a committed
//! prefix of the MULTI sequence.

use std::collections::BTreeMap;
use std::sync::Arc;

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::stm_core::api::Atomic;
use composing_relaxed_transactions::stm_core::cm::CmPolicy;
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::StmConfig;
use composing_relaxed_transactions::txkv::{KeySpace, MultiOp, ShardKind};
use durable::{DurableStore, MemVfs, Vfs};
use proptest::prelude::*;

/// Every registered backend, including the 2PL boosting one and the
/// deliberately broken E-STM compatibility mode (whose unprotected
/// *elastic* reads txkv sidesteps by running MULTI sections `Regular`).
const BACKENDS: [&str; 6] = ["oe", "oe-estm-compat", "lsa", "tl2", "swiss", "boost"];

/// Small key universe so concurrent MULTIs actually collide.
const CAPACITY: usize = 64;
const SHARDS: usize = 4;

fn runner(backend: &str, cm: CmPolicy) -> Atomic<Backend> {
    Atomic::new(
        backend_registry()
            .build(backend, StmConfig::default().with_cm(cm))
            .expect("registry backend"),
    )
}

/// Apply one increment-MULTI over `keys` (duplicates allowed — each
/// occurrence reads the section's own prior write).
fn multi_increment(ks: &KeySpace, at: &Atomic<Backend>, keys: &[i64]) {
    ks.multi(at, keys, |_, cur| {
        MultiOp::Put(cur.unwrap_or(0).wrapping_add(1))
    });
}

/// The single-threaded reference: count how many times each key was
/// incremented across every thread's MULTI list.
fn reference_counts(per_thread: &[Vec<Vec<i64>>]) -> BTreeMap<i64, u64> {
    let mut counts = BTreeMap::new();
    for thread_ops in per_thread {
        for multi in thread_ops {
            for &k in multi {
                *counts.entry(k).or_insert(0u64) += 1;
            }
        }
    }
    counts
}

/// Run `per_thread` concurrently and check the final image against the
/// reference on one backend × CM cell.
fn check_cell(backend: &str, cm: CmPolicy, per_thread: &[Vec<Vec<i64>>], kind: ShardKind) {
    let ks = KeySpace::new(kind, SHARDS, CAPACITY);
    let at = runner(backend, cm);
    std::thread::scope(|s| {
        for thread_ops in per_thread {
            let (ks, at) = (&ks, &at);
            s.spawn(move || {
                for multi in thread_ops {
                    multi_increment(ks, at, multi);
                }
            });
        }
    });
    let expect = reference_counts(per_thread);
    for (&k, &count) in &expect {
        assert_eq!(
            ks.get(&at, k),
            Some(count),
            "{backend}/{}: key {k} lost part of a MULTI",
            cm.name()
        );
    }
    assert_eq!(
        ks.len(&at),
        expect.len(),
        "{backend}/{}: membership diverged from the reference",
        cm.name()
    );
}

/// One thread's MULTI list: up to 6 transactions of 2..=4 keys each.
/// Keys inside a MULTI are sorted — a single transaction presents its
/// footprint in a consistent order, so the eager-locking boost backend
/// cannot deadlock on intra-transaction lock inversions.
fn multis() -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(
        prop::collection::vec(0..CAPACITY as i64, 2..5).prop_map(|mut keys| {
            keys.sort_unstable();
            keys
        }),
        1..7,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn concurrent_multis_match_the_reference_on_every_backend_and_cm(
        a in multis(),
        b in multis(),
    ) {
        let per_thread = [a, b];
        for cm in CmPolicy::ALL {
            for backend in BACKENDS {
                check_cell(backend, cm, &per_thread, ShardKind::Hash);
            }
        }
        // Sharding must not depend on the structure: one skiplist pass.
        check_cell("oe", CmPolicy::TwoPhase, &per_thread, ShardKind::SkipList);
    }
}

#[test]
fn racing_cross_shard_transfers_conserve_the_total() {
    // Classic bank invariant, sharded: two threads move value between
    // accounts that live on different shards; any observer MULTI (and
    // the final image) must see the total conserved.
    const ACCOUNTS: i64 = 16;
    const PER: u64 = 1_000;
    for backend in BACKENDS {
        let ks = KeySpace::new(ShardKind::Hash, SHARDS, CAPACITY);
        let at = runner(backend, CmPolicy::TwoPhase);
        for k in 0..ACCOUNTS {
            ks.set(&at, k, PER);
        }
        std::thread::scope(|s| {
            for t in 0..2i64 {
                let (ks, at) = (&ks, &at);
                s.spawn(move || {
                    for i in 0..40i64 {
                        let from = (i + t) % ACCOUNTS;
                        let to = (i * 7 + t * 3 + 1) % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        // Sorted footprint (see `multis`): boost locks in
                        // a consistent order.
                        let (lo, hi) = (from.min(to), from.max(to));
                        ks.multi(at, &[lo, hi], |pos, cur| {
                            let v = cur.unwrap_or(0);
                            let key = if pos == 0 { lo } else { hi };
                            if key == from {
                                MultiOp::Put(v.wrapping_sub(1))
                            } else {
                                MultiOp::Put(v.wrapping_add(1))
                            }
                        });
                    }
                });
            }
        });
        let total: u64 = (0..ACCOUNTS)
            .map(|k| ks.get(&at, k).expect("account exists"))
            .sum();
        assert_eq!(
            total,
            ACCOUNTS as u64 * PER,
            "{backend}: a torn MULTI created or destroyed value"
        );
    }
}

#[test]
fn durable_multis_survive_a_crash_as_a_committed_prefix() {
    // Run a deterministic MULTI sequence through the WAL hook, crash the
    // VFS, recover into a fresh keyspace, and check the recovered image
    // equals one of the reference prefix states. `Wal::append` fsyncs
    // before the commit returns, so the surviving prefix is in fact the
    // *full* sequence — asserted last, separately, to keep the prefix
    // property and the no-loss property distinct.
    let mem = Arc::new(MemVfs::new());
    let reference_after: Vec<BTreeMap<i64, u64>> = {
        let (store, recovered) = DurableStore::open(mem.clone() as Arc<dyn Vfs>).unwrap();
        assert!(recovered.values.is_empty(), "fresh store must be empty");
        let ks = KeySpace::new(ShardKind::Hash, SHARDS, CAPACITY);
        ks.register_durable(store.heap());
        let at = Atomic::new(
            backend_registry()
                .build("tl2", StmConfig::default().with_commit_hook(store.hook()))
                .unwrap(),
        );
        let mut reference = BTreeMap::new();
        let mut prefixes = vec![reference.clone()];
        for step in 0..10i64 {
            let keys = [step % 8, 8 + (step * 3) % 8, 16 + (step * 5) % 8];
            multi_increment(&ks, &at, &keys);
            for &k in &keys {
                *reference.entry(k).or_insert(0u64) += 1;
            }
            prefixes.push(reference.clone());
        }
        assert!(store.io_error().is_none(), "WAL poisoned during workload");
        mem.crash();
        prefixes
    };

    // Reopen the crashed VFS: recovery replays snapshot + WAL.
    let (store, recovery) = DurableStore::open(mem as Arc<dyn Vfs>).unwrap();
    let ks = KeySpace::new(ShardKind::Hash, SHARDS, CAPACITY);
    ks.register_durable(store.heap());
    let at = Atomic::new(
        backend_registry()
            .build("tl2", StmConfig::default().with_commit_hook(store.hook()))
            .unwrap(),
    );
    ks.restore(&at, &recovery);
    let recovered: BTreeMap<i64, u64> = (0..CAPACITY as i64)
        .filter_map(|k| ks.get(&at, k).map(|v| (k, v)))
        .collect();
    assert!(
        reference_after.contains(&recovered),
        "recovered image is not a committed prefix of the MULTI sequence"
    );
    assert_eq!(
        recovered,
        *reference_after.last().unwrap(),
        "group commit fsyncs before returning: nothing may be lost"
    );
}

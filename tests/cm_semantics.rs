//! Contention-management semantics under adversarial conflict pressure:
//! every CM policy × every registry backend, against forced-conflict
//! adversaries injected into specific attempts (mirroring the hook
//! injection of `fig1_composition_violation.rs`, lifted to the facade).
//!
//! What is pinned down, per (policy, backend) cell:
//!
//! * **progress** — a transaction whose first K attempts are sabotaged by
//!   a racing committed write recovers and commits, under every arbiter;
//! * **bounded termination (no livelock)** — against an adversary that
//!   *always* wins, a bounded retry budget terminates the run with
//!   `RetriesExhausted` after exactly budget+1 attempts, for every
//!   arbiter including the ones that wait;
//! * **statistics filing** — forced conflicts land in the conflict-abort
//!   counters and explicit retries in their own category; contention-
//!   manager aborts are never counted as `ExplicitRetry` and vice versa,
//!   and the pacing counters match the policy (suicide never waits, the
//!   others pace every loss).

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::stm_core::api::{Atomic, Policy};
use composing_relaxed_transactions::stm_core::cm::CmPolicy;
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::{RunError, StmConfig, TVar};

/// Every backend in the registry, including the deliberately broken
/// E-STM compatibility mode — CM arbitration must be uniform across all.
const BACKENDS: [&str; 5] = ["oe", "oe-estm-compat", "lsa", "tl2", "swiss"];

fn runner(backend: &str, cm: CmPolicy, max_retries: Option<u64>) -> Atomic<Backend> {
    let mut cfg = StmConfig::default().with_cm(cm);
    if let Some(budget) = max_retries {
        cfg = cfg.with_max_retries(budget);
    }
    Atomic::new(
        backend_registry()
            .build(backend, cfg)
            .expect("registry backend"),
    )
}

/// For each CM × backend: run `check` with a fresh runner.
fn for_every_cell(
    max_retries: Option<u64>,
    mut check: impl FnMut(&Atomic<Backend>, CmPolicy, &str),
) {
    for cm in CmPolicy::ALL {
        for backend in BACKENDS {
            let at = runner(backend, cm, max_retries);
            check(&at, cm, backend);
        }
    }
}

#[test]
fn forced_conflict_adversary_cannot_stop_progress() {
    // The adversary: after the transaction has read `a`, commit a racing
    // write to `a` (out-of-band versioned store, exactly the fig1 hook
    // trick) on the first K attempts. Every attempt it sabotages must
    // abort as a *conflict*; attempt K+1 runs unmolested and commits.
    const SABOTAGED: u64 = 4;
    for_every_cell(None, |at, cm, backend| {
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        let mut sabotage_left = SABOTAGED;
        at.run(Policy::Regular, |tx| {
            let ra = tx.get(&a)?;
            if sabotage_left > 0 {
                sabotage_left -= 1;
                let nv = at.clock().tick();
                a.store_atomic(ra + 100, nv);
            }
            let rb = tx.get(&b)?;
            tx.set(&b, ra + rb + 1)
        });
        let snap = at.stats();
        assert_eq!(snap.commits, 1, "{backend}/{cm}");
        assert_eq!(snap.aborts(), SABOTAGED, "{backend}/{cm}: {snap:?}");
        assert_eq!(
            snap.explicit_retries(),
            0,
            "{backend}/{cm}: conflicts must never file as explicit retries"
        );
        if cm == CmPolicy::Suicide {
            assert_eq!(snap.cm_waits(), 0, "{backend}/{cm}: suicide never paces");
        } else {
            assert_eq!(
                snap.cm_waits(),
                SABOTAGED,
                "{backend}/{cm}: every loss is paced exactly once"
            );
        }
    });
}

#[test]
fn always_winning_adversary_terminates_within_the_attempt_budget() {
    // No-livelock: the adversary sabotages EVERY attempt. With a retry
    // budget of 6, the run must terminate in exactly 7 attempts under
    // every policy — including the waiting ones, whose pacing must stay
    // bounded — reporting the final conflict, not spinning forever.
    const BUDGET: u64 = 6;
    for_every_cell(Some(BUDGET), |at, cm, backend| {
        let a = TVar::new(0u64);
        let r: Result<(), _> = at.try_run(Policy::Regular, |tx| {
            let ra = tx.get(&a)?;
            let nv = at.clock().tick();
            a.store_atomic(ra + 1, nv);
            tx.set(&a, ra + 50)
        });
        match r {
            Err(RunError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, BUDGET + 1, "{backend}/{cm}");
            }
            other => panic!("{backend}/{cm}: expected exhaustion, got {other:?}"),
        }
        let snap = at.stats();
        assert_eq!(snap.commits, 0, "{backend}/{cm}");
        assert_eq!(snap.aborts(), BUDGET + 1, "{backend}/{cm}");
        assert_eq!(snap.explicit_retries(), 0, "{backend}/{cm}");
    });
}

#[test]
fn explicit_retries_file_separately_from_cm_aborts() {
    // A retry storm through the facade: the body explicit-retries K times
    // before committing. The retries must land in their own category —
    // never in the conflict counters, and in particular never in the
    // ContentionManager slot — and a genuine precondition wait is parked
    // on the read set, NOT paced by the CM (under every policy alike).
    const RETRIES: u64 = 5;
    for_every_cell(None, |at, cm, backend| {
        let v = TVar::new(0u64);
        let mut left = RETRIES;
        at.run(Policy::Regular, |tx| {
            let cur = tx.get(&v)?;
            tx.set(&v, cur + 7)?;
            if left > 0 {
                left -= 1;
                return tx.retry();
            }
            Ok(())
        });
        assert_eq!(v.load_atomic(), 7, "{backend}/{cm}: retried writes leaked");
        let snap = at.stats();
        assert_eq!(snap.commits, 1, "{backend}/{cm}");
        assert_eq!(snap.explicit_retries(), RETRIES, "{backend}/{cm}");
        assert_eq!(
            snap.aborts(),
            0,
            "{backend}/{cm}: explicit retries counted as conflict aborts"
        );
        assert_eq!(
            snap.cm_aborts(),
            0,
            "{backend}/{cm}: explicit retries counted as CM aborts"
        );
        assert_eq!(snap.abort_rate(), 0.0, "{backend}/{cm}");
        assert_eq!(
            snap.retry_parks, RETRIES,
            "{backend}/{cm}: every genuine retry parks on the read set"
        );
        assert_eq!(
            snap.cm_waits(),
            0,
            "{backend}/{cm}: a precondition wait is parked, never CM-paced"
        );
    });
}

#[test]
fn mixed_conflicts_and_retries_never_cross_categories() {
    // Interleave both abort kinds in one run: attempts 1 and 3 are
    // sabotaged (conflicts), attempts 2 and 4 explicit-retry, attempt 5
    // commits. Each category must count exactly its own events.
    for_every_cell(None, |at, cm, backend| {
        let a = TVar::new(0u64);
        let mut attempt = 0u32;
        at.run(Policy::Regular, |tx| {
            attempt += 1;
            let ra = tx.get(&a)?;
            match attempt {
                1 | 3 => {
                    let nv = at.clock().tick();
                    a.store_atomic(ra + 10, nv);
                    tx.set(&a, ra + 1) // will fail validation at commit
                }
                2 | 4 => tx.retry(),
                _ => tx.set(&a, ra + 1),
            }
        });
        let snap = at.stats();
        assert_eq!(snap.commits, 1, "{backend}/{cm}");
        assert_eq!(snap.aborts(), 2, "{backend}/{cm}: {snap:?}");
        assert_eq!(snap.explicit_retries(), 2, "{backend}/{cm}");
        assert!(
            snap.cm_aborts() <= snap.aborts(),
            "{backend}/{cm}: cm aborts must be a subset of conflict aborts"
        );
    });
}

#[test]
fn composed_sections_recover_from_an_injected_adversary() {
    // The fig1-style composition adversary at the facade level: section 1
    // reads `y`; the adversary commits `y := 1` through a nested top-level
    // transaction on the same backend; section 2 writes `x` from the stale
    // read. Regular sections protect the read on every backend (including
    // the E-STM compatibility mode — the paper's "use regular mode when
    // composing" workaround), so the composition must abort, retry, and
    // produce the consistent result under every arbiter.
    for_every_cell(None, |at, cm, backend| {
        let y = TVar::new(0u64);
        let x = TVar::new(0u64);
        let mut sabotage = true;
        let observed = at.run(Policy::Regular, |tx| {
            let ry = tx.section(Policy::Regular, |t| t.get(&y))?;
            if sabotage {
                sabotage = false;
                // The adversary: a complete committed transaction injected
                // between the two sections of this attempt.
                at.run(Policy::Regular, |t| t.set(&y, 1));
            }
            tx.section(Policy::Regular, |t| t.set(&x, 10 + ry))?;
            Ok(ry)
        });
        assert_eq!(observed, 1, "{backend}/{cm}: the stale read must not win");
        assert_eq!(x.load_atomic(), 11, "{backend}/{cm}");
        let snap = at.stats();
        assert!(
            snap.aborts() >= 1,
            "{backend}/{cm}: the adversary must force at least one abort"
        );
        assert_eq!(snap.explicit_retries(), 0, "{backend}/{cm}");
    });
}

//! The allocation-free hot path, enforced: a warmed-up transaction retry
//! loop must perform **zero heap allocations per attempt** on every
//! word-based backend — both at the SPI level and through the `atomic`
//! facade (`Atomic`/`Tx`/`or_else`), which must add nothing of its own.
//!
//! Method: a `#[global_allocator]` wrapper around the system allocator
//! counts every `alloc`/`realloc`/`alloc_zeroed` call. For each backend we
//! run the same transaction body twice on warmed state — once committing
//! immediately and once after 32 forced aborts — and require the allocation
//! counts to be *identical*: every retry attempt beyond the first must
//! reuse the run's scratch (read set, write set, spill index, lock order,
//! undo log, nesting frames) without touching the allocator.
//!
//! The body deliberately stresses every scratch component: reads, >16
//! distinct writes (past the write set's linear-scan threshold, so the
//! open-addressed spill index engages), and a child transaction (nesting
//! frame; for OE-STM also the window hand-off).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::api::{Atomic, AtomicBackend, Policy};
use composing_relaxed_transactions::stm_core::cm::CmPolicy;
use composing_relaxed_transactions::stm_core::{Stm, StmConfig, TVar, Transaction, TxKind};
use composing_relaxed_transactions::stm_lsa::Lsa;
use composing_relaxed_transactions::stm_swiss::Swiss;
use composing_relaxed_transactions::stm_tl2::Tl2;

/// Number of heap allocation events (alloc + realloc + alloc_zeroed).
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic
// with no other side effects, so all `GlobalAlloc` contracts are inherited.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Distinct written locations — past the write set's linear-scan threshold
/// (16), so the spill index is on the measured path.
const WRITES: usize = 24;
/// Locations read before writing.
const READS: usize = 8;

/// Run one transaction that reads, composes a child, writes 24 locations,
/// and force-aborts itself `aborts` times before committing. Returns the
/// number of allocation events during the `run` call.
fn alloc_events_for_run<S: Stm>(stm: &S, kind: TxKind, vars: &[TVar<u64>], aborts: u32) -> u64 {
    let mut left = aborts;
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    stm.run(kind, |tx| {
        let mut acc = 0u64;
        for v in &vars[..READS] {
            acc = acc.wrapping_add(tx.read(v)?);
        }
        // A child transaction: pushes a nesting frame (and, for OE-STM,
        // parks the parent's elastic window).
        tx.child(kind, |tx| {
            let x = tx.read(&vars[0])?;
            tx.write(&vars[0], x.wrapping_add(1))
        })?;
        for (i, v) in vars[..WRITES].iter().enumerate() {
            tx.write(v, acc.wrapping_add(i as u64))?;
        }
        if left > 0 {
            left -= 1;
            return tx.retry();
        }
        Ok(())
    });
    ALLOC_EVENTS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over several trials. The counter is
/// process-global, so a libtest harness thread can inject *extra* events
/// into a trial — but never remove any. The minimum over a handful of
/// trials is therefore the undisturbed per-run count.
fn min_events<S: Stm>(stm: &S, kind: TxKind, vars: &[TVar<u64>], aborts: u32) -> u64 {
    (0..8)
        .map(|_| alloc_events_for_run(stm, kind, vars, aborts))
        .min()
        .expect("at least one trial")
}

/// The assertion: once warm, a run with 32 forced aborts allocates exactly
/// as much as a run with none — i.e. retry attempts are allocation-free.
fn assert_retries_do_not_allocate<S: Stm>(stm: &S, kind: TxKind, name: &str) {
    let vars: Vec<TVar<u64>> = (0..WRITES as u64).map(TVar::new).collect();
    // Warm up: fills the thread-local scratch pool (index table, lock
    // order, aux buffers) and any lazy statics.
    alloc_events_for_run(stm, kind, &vars, 2);
    let clean = min_events(stm, kind, &vars, 0);
    let storm = min_events(stm, kind, &vars, 32);
    assert_eq!(
        storm, clean,
        "{name}: a 33-attempt run allocated {storm} times vs {clean} for a \
         single-attempt run — retries must not touch the allocator"
    );
}

/// The same body through the `atomic` facade (`get`/`set`, a `section`,
/// `tx.retry()`): the facade's `Tx` wrapper and the `or_else` runner must
/// add no allocation of their own.
fn facade_events_for_run<B: AtomicBackend>(
    at: &Atomic<B>,
    policy: Policy,
    vars: &[TVar<u64>],
    aborts: u32,
) -> u64 {
    let mut left = aborts;
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    at.run(policy, |tx| {
        let mut acc = 0u64;
        for v in &vars[..READS] {
            acc = acc.wrapping_add(tx.get(v)?);
        }
        tx.section(policy, |tx| {
            let x = tx.get(&vars[0])?;
            tx.set(&vars[0], x.wrapping_add(1))
        })?;
        for (i, v) in vars[..WRITES].iter().enumerate() {
            tx.set(v, acc.wrapping_add(i as u64))?;
        }
        if left > 0 {
            left -= 1;
            return tx.retry();
        }
        Ok(())
    });
    ALLOC_EVENTS.load(Ordering::Relaxed) - before
}

fn facade_min_events<B: AtomicBackend>(
    at: &Atomic<B>,
    policy: Policy,
    vars: &[TVar<u64>],
    aborts: u32,
) -> u64 {
    (0..8)
        .map(|_| facade_events_for_run(at, policy, vars, aborts))
        .min()
        .expect("at least one trial")
}

fn assert_facade_retries_do_not_allocate<B: AtomicBackend>(
    at: &Atomic<B>,
    policy: Policy,
    name: &str,
) {
    let vars: Vec<TVar<u64>> = (0..WRITES as u64).map(TVar::new).collect();
    facade_events_for_run(at, policy, &vars, 2); // warm the scratch pool
    let clean = facade_min_events(at, policy, &vars, 0);
    let storm = facade_min_events(at, policy, &vars, 32);
    assert_eq!(
        storm, clean,
        "{name}: a 33-attempt facade run allocated {storm} times vs {clean} \
         for a single-attempt run — the facade must not touch the allocator"
    );
}

/// `or_else` with a retrying primary branch: branch alternation happens
/// across attempts of one run and must be allocation-free too.
fn assert_or_else_does_not_allocate<B: AtomicBackend>(at: &Atomic<B>, name: &str) {
    let v = TVar::new(0u64);
    let one_branch = |at: &Atomic<B>, retries: u32| {
        // Both branch closures need the countdown; Cell lets them share it.
        let left = std::cell::Cell::new(retries);
        let before = ALLOC_EVENTS.load(Ordering::Relaxed);
        at.or_else(
            Policy::Regular,
            |tx| {
                tx.set(&v, 1)?;
                if left.get() > 0 {
                    left.set(left.get() - 1);
                    return tx.retry();
                }
                Ok(())
            },
            |tx| {
                tx.set(&v, 2)?;
                if left.get() > 0 {
                    left.set(left.get() - 1);
                    return tx.retry();
                }
                Ok(())
            },
        );
        ALLOC_EVENTS.load(Ordering::Relaxed) - before
    };
    one_branch(at, 2); // warm
    let clean = (0..8).map(|_| one_branch(at, 0)).min().unwrap();
    let storm = (0..8).map(|_| one_branch(at, 32)).min().unwrap();
    assert_eq!(
        storm, clean,
        "{name}: or_else branch alternation allocated ({storm} vs {clean})"
    );
}

/// One sequential test (not five): the allocation counter is
/// process-global, and libtest's worker threads and result printing would
/// otherwise allocate concurrently with a measured region and flake the
/// exact-equality assertion.
#[test]
fn warmed_retry_loops_do_not_allocate_on_any_backend() {
    assert_retries_do_not_allocate(&Tl2::new(), TxKind::Regular, "TL2");
    assert_retries_do_not_allocate(&Lsa::new(), TxKind::Regular, "LSA");
    assert_retries_do_not_allocate(&Swiss::new(), TxKind::Regular, "SwissTM");
    assert_retries_do_not_allocate(&OeStm::new(), TxKind::Regular, "OE-STM/regular");
    assert_retries_do_not_allocate(&OeStm::new(), TxKind::Elastic, "OE-STM/elastic");

    // The `atomic` facade on top: a static runner and a registry-built
    // erased runner, plus the `or_else` alternation path. Steady state
    // must stay allocation-free through the new user layer.
    assert_facade_retries_do_not_allocate(
        &Atomic::new(OeStm::new()),
        Policy::Elastic,
        "facade/OE-STM",
    );
    assert_facade_retries_do_not_allocate(
        &Atomic::new(backend_registry().build_default("tl2").unwrap()),
        Policy::Regular,
        "facade/Backend(tl2)",
    );
    assert_or_else_does_not_allocate(&Atomic::new(Tl2::new()), "or_else/TL2");
    assert_or_else_does_not_allocate(
        &Atomic::new(backend_registry().build_default("oe").unwrap()),
        "or_else/Backend(oe)",
    );

    // Contention-management arbitration must be allocation-free too: the
    // per-run CmState lives inline in the transaction object, and every
    // policy's bookkeeping (including Karma's accumulating priority,
    // which every forced retry feeds) is plain integers. Same
    // 33-attempts-vs-1 exact-equality bar, every policy × every backend.
    for cm in CmPolicy::ALL {
        let cfg = StmConfig::default().with_cm(cm);
        assert_retries_do_not_allocate(
            &Tl2::with_config(cfg.clone()),
            TxKind::Regular,
            &format!("TL2+{cm}"),
        );
        assert_retries_do_not_allocate(
            &Lsa::with_config(cfg.clone()),
            TxKind::Regular,
            &format!("LSA+{cm}"),
        );
        assert_retries_do_not_allocate(
            &Swiss::with_config(cfg.clone()),
            TxKind::Regular,
            &format!("SwissTM+{cm}"),
        );
        assert_retries_do_not_allocate(
            &OeStm::with_config(cfg.clone()),
            TxKind::Elastic,
            &format!("OE-STM+{cm}"),
        );
    }
    // …and through the facade, over an erased registry backend built on
    // the CM axis (what `repro --cm` measures), including or_else
    // alternation under the stateful Karma policy.
    assert_facade_retries_do_not_allocate(
        &Atomic::new(
            backend_registry()
                .build_with_cm("swiss", CmPolicy::Karma)
                .unwrap(),
        ),
        Policy::Regular,
        "facade/Backend(swiss)+karma",
    );
    assert_or_else_does_not_allocate(
        &Atomic::new(
            backend_registry()
                .build_with_cm("oe", CmPolicy::Karma)
                .unwrap(),
        ),
        "or_else/Backend(oe)+karma",
    );

    // Tracing is a first-class capability of every registry backend now:
    // each attempt consults `config.trace_sink` on its begin path. With
    // no sink installed (the default — `StmConfig::default()` is exactly
    // the trace-capable configuration with tracing off) that consultation
    // must stay allocation-free: same 33-attempts-vs-1 exact-equality
    // bar for every registered word-based backend. `boost` is exempt: it
    // rebuilds its abstract-lock and compensation logs per attempt by
    // design (boosting replays inverses; it makes no hot-path claim and
    // none of its files carry the `lint:hot-path` tag).
    for name in backend_registry().names() {
        if name == "boost" {
            continue;
        }
        assert_facade_retries_do_not_allocate(
            &Atomic::new(backend_registry().build_default(name).unwrap()),
            Policy::Regular,
            &format!("tracing-off/Backend({name})"),
        );
    }

    // The txkv latency-recording path: `LatencyHistogram::record_us` is
    // one relaxed fetch_add into a fixed bucket array (the `lint:hot-path`
    // pin on `txkv::hist`). A warmed histogram must record any latency —
    // sub-microsecond through the saturating top bucket — with exactly
    // zero allocation events, or the service scenarios' measured numbers
    // would include allocator noise.
    let hist = composing_relaxed_transactions::txkv::LatencyHistogram::new();
    hist.record_us(7); // construction done; nothing left to warm
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        hist.record_us(i.wrapping_mul(0x9E37_79B9) >> (i % 48));
    }
    let events = ALLOC_EVENTS.load(Ordering::Relaxed) - before;
    assert_eq!(
        events, 0,
        "LatencyHistogram::record_us allocated {events} times over 10k \
         records — the record path must never touch the allocator"
    );
    assert_eq!(hist.count(), 10_001, "every record must land in a bucket");

    // Cross-transaction reuse: after warmup, back-to-back `run` calls may
    // allocate only the per-run entry vectors (which hold `&TVar` borrows
    // and cannot be pooled without `unsafe`), never the index table or
    // order buffers. Pin that down loosely: a whole fresh `run` must cost
    // at most a handful of allocation events.
    let stm = Tl2::new();
    let vars: Vec<TVar<u64>> = (0..WRITES as u64).map(TVar::new).collect();
    for _ in 0..4 {
        alloc_events_for_run(&stm, TxKind::Regular, &vars, 0);
    }
    let per_run = min_events(&stm, TxKind::Regular, &vars, 0);
    assert!(
        per_run <= 12,
        "a warmed-up transaction allocated {per_run} times; the pooled \
         scratch should leave only the entry-vector growth"
    );
}

//! The paper's future work, already expressible here: "composing multiple
//! types of relaxed transactions inside the same transactional memory."
//!
//! OE-STM's `child(kind, …)` lets one parent compose *elastic* and
//! *regular* children freely — outheritance is kind-agnostic (the
//! protected set passes up regardless of how it was accumulated). These
//! tests pin down the semantics of every mixture:
//!
//! * elastic child inside a regular parent: the child still relaxes its
//!   own read-only prefix;
//! * regular child inside an elastic parent: the child's reads are fully
//!   protected even though the parent relaxes its own;
//! * both children outherit, so the *composition* is atomic either way.

use composing_relaxed_transactions::cec::{LinkedListSet, OpScratch, SetOps};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::{AbortReason, Stm, TVar, Transaction, TxKind};

/// An elastic child's prefix relaxation still applies inside a regular
/// parent: a conflict behind the child's window is ignored.
#[test]
fn elastic_child_relaxes_inside_regular_parent() {
    let stm = OeStm::new();
    let a = TVar::new(1u64);
    let b = TVar::new(2u64);
    let c = TVar::new(3u64);
    let out = TVar::new(0u64);
    stm.run(TxKind::Regular, |tx| {
        let sum = tx.child(TxKind::Elastic, |tx| {
            let ra = tx.read(&a)?;
            let rb = tx.read(&b)?;
            let rc = tx.read(&c)?; // `a` slides out of the child's window
                                   // Prefix conflict on `a` while the child is still running:
            let nv = stm.clock().tick();
            a.store_atomic(99, nv);
            Ok(ra + rb + rc)
        })?;
        tx.write(&out, sum)
    });
    assert_eq!(out.load_atomic(), 6);
    assert_eq!(
        stm.stats().aborts(),
        0,
        "the elastic child's relaxation must survive a regular parent"
    );
}

/// A regular child is fully protected inside an elastic parent: the same
/// prefix conflict now aborts the attempt.
#[test]
fn regular_child_is_protected_inside_elastic_parent() {
    let stm = OeStm::new();
    let a = TVar::new(1u64);
    let b = TVar::new(2u64);
    let c = TVar::new(3u64);
    let out = TVar::new(0u64);
    let mut sabotage = true;
    stm.run(TxKind::Elastic, |tx| {
        let sum = tx.child(TxKind::Regular, |tx| {
            let ra = tx.read(&a)?;
            let rb = tx.read(&b)?;
            let rc = tx.read(&c)?;
            if sabotage {
                sabotage = false;
                let nv = stm.clock().tick();
                a.store_atomic(99, nv);
            }
            Ok(ra + rb + rc)
        })?;
        tx.write(&out, sum)
    });
    assert!(
        stm.stats().aborts() >= 1,
        "a regular child must detect the prefix conflict"
    );
    assert_eq!(out.load_atomic(), 99 + 2 + 3, "retry sees the new value");
}

/// Mixed-kind composition is atomic: an elastic `contains` child and a
/// regular `add` child compose into an insert-if-absent that survives the
/// Fig. 1 adversary.
#[test]
fn mixed_kind_insert_if_absent_is_atomic() {
    let stm = OeStm::new();
    let set = LinkedListSet::new();
    for k in (0..40).step_by(2) {
        // Fresh scratch per operation: `allocated` entries of a COMMITTED
        // add are published and must never be recycled.
        let mut seed_scratch = OpScratch::default();
        stm.run(TxKind::Elastic, |tx| {
            set.release_unpublished(&mut seed_scratch.allocated);
            set.add_in(tx, k, &mut seed_scratch)
        });
    }
    let (x, y) = (101, 33);
    let mut scratch = OpScratch::default();
    let mut adv = OpScratch::default();
    let mut first = true;
    let inserted = stm.run(TxKind::Elastic, |tx| {
        set.release_unpublished(&mut scratch.allocated);
        scratch.unlinked.clear();
        // Elastic check child + regular insert child.
        let present = tx.child(TxKind::Elastic, |t| set.contains_in(t, y))?;
        if first {
            first = false;
            stm.run(TxKind::Elastic, |t| {
                set.release_unpublished(&mut adv.allocated);
                set.add_in(t, y, &mut adv)
            });
        }
        if present {
            return Ok(false);
        }
        tx.child(TxKind::Regular, |t| set.add_in(t, x, &mut scratch))?;
        Ok(true)
    });
    assert!(!inserted, "the adversary's insert must be detected");
    assert!(!stm.run(TxKind::Elastic, |tx| set.contains_in(tx, x)));
    assert!(stm.run(TxKind::Elastic, |tx| set.contains_in(tx, y)));
}

/// Deep mixed nesting: elastic(regular(elastic(...))) keeps the combined
/// protected set and commits atomically.
#[test]
fn deep_mixed_nesting_commits_once() {
    let stm = OeStm::new();
    let vars: Vec<TVar<u64>> = (0..6).map(|_| TVar::new(1)).collect();
    let total = stm.run(TxKind::Elastic, |tx| {
        let a = tx.child(TxKind::Regular, |tx| {
            let x = tx.read(&vars[0])?;
            tx.child(TxKind::Elastic, |tx| {
                let y = tx.read(&vars[1])?;
                tx.write(&vars[2], x + y)?;
                Ok(x + y)
            })
        })?;
        let b = tx.child(TxKind::Elastic, |tx| {
            let z = tx.read(&vars[2])?; // reads the inner child's write
            tx.write(&vars[3], z * 10)?;
            Ok(z)
        })?;
        Ok(a + b)
    });
    assert_eq!(total, 4);
    assert_eq!(vars[2].load_atomic(), 2);
    assert_eq!(vars[3].load_atomic(), 20);
    assert_eq!(stm.stats().commits, 1, "one top-level commit");
    assert_eq!(stm.stats().child_commits, 3);
    assert_eq!(stm.stats().outherits, 3);
}

/// Kind restoration: after a child of a different kind commits, the parent
/// continues under its own kind (an elastic parent goes back to windowed
/// reads after a regular child).
#[test]
fn parent_kind_restored_after_mixed_child() {
    let stm = OeStm::new();
    let a = TVar::new(1u64);
    let b = TVar::new(2u64);
    let c = TVar::new(3u64);
    let d = TVar::new(4u64);
    stm.run(TxKind::Elastic, |tx| {
        assert_eq!(tx.kind(), TxKind::Elastic);
        tx.child(TxKind::Regular, |tx| {
            assert_eq!(tx.kind(), TxKind::Regular);
            tx.read(&a)
        })?;
        assert_eq!(tx.kind(), TxKind::Elastic, "parent kind restored");
        // Parent's own elastic reads still relax their prefix.
        let _ = tx.read(&b)?;
        let _ = tx.read(&c)?;
        let _ = tx.read(&d)?; // b slides out
        let nv = stm.clock().tick();
        b.store_atomic(9, nv); // prefix conflict: must be ignored
        Ok(())
    });
    assert_eq!(stm.stats().aborts(), 0);
}

/// Abort causes remain classified correctly across mixed nesting.
#[test]
fn abort_causes_classified_in_mixed_nesting() {
    let stm = OeStm::new();
    let a = TVar::new(1u64);
    let b = TVar::new(2u64);
    let mut sabotage = true;
    stm.run(TxKind::Elastic, |tx| {
        tx.child(TxKind::Elastic, |tx| {
            let _ = tx.read(&a)?;
            let _ = tx.read(&b)?; // window = {a, b}
            if sabotage {
                sabotage = false;
                // Invalidate a windowed entry, then force a snapshot
                // advance (only on the first attempt, or every retry
                // would sabotage itself).
                let nv = stm.clock().tick();
                b.store_atomic(9, nv);
                let nv2 = stm.clock().tick();
                a.store_atomic(5, nv2);
            }
            tx.read(&a)
        })
    });
    let snap = stm.stats();
    assert!(
        snap.aborts_by_cause[AbortReason::ElasticCut.index()] >= 1,
        "windowed conflict must be classified as an elastic-cut abort, got {snap:?}"
    );
}

//! Progress guarantees under hot conflict: every registry backend × every
//! contention-management policy completes a two-thread conflict storm
//! within a wall-clock bound.
//!
//! This is the regression fence for the historical 2-thread livelock
//! (PR 3 recorded >25-minute hangs on exactly this shape of workload
//! before contention management existed). Progress is now *guaranteed*,
//! not incidental: past `StmConfig::progress_park_after` consecutive
//! losses the retry loop parks the loser on escalating bounded sleeps
//! (see `stm_core::stm` "The progress backstop" and DESIGN.md "Scalable
//! clocks and progress"), which hands some competitor an uncontended
//! window under every arbitration policy. The battery here drives the
//! real two-thread storm under a `recv_timeout` watchdog — a livelock
//! fails the test loudly instead of hanging CI — and pins the backstop's
//! accounting invariant deterministically via the out-of-band sabotage
//! hook.

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::stm_core::api::{Atomic, Policy};
use composing_relaxed_transactions::stm_core::cm::CmPolicy;
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::{StmConfig, TVar};
use std::sync::mpsc;
use std::time::Duration;

/// Every backend in the registry, including the 2PL boost backend and the
/// deliberately broken E-STM compatibility mode: the progress guarantee
/// is a property of the shared retry loop, so no backend is exempt.
const BACKENDS: [&str; 6] = ["oe", "oe-estm-compat", "lsa", "tl2", "swiss", "boost"];

/// Read-modify-writes per worker in the storm.
const INCREMENTS_PER_THREAD: u64 = 200;

/// Wall-clock bound per (backend, cm) cell. Generous — a healthy cell
/// finishes in milliseconds; the bound only exists so a reintroduced
/// livelock fails fast instead of hanging the suite for 25 minutes.
const CELL_BOUND: Duration = Duration::from_secs(60);

fn runner(backend: &str, cfg: StmConfig) -> Atomic<Backend> {
    Atomic::new(
        backend_registry()
            .build(backend, cfg)
            .expect("registry backend"),
    )
}

/// Two workers hammer one shared counter with transactional increments —
/// the densest write-write conflict the API can express — and the main
/// thread referees with a timeout. Exiting the process on timeout is
/// deliberate: livelocked worker threads cannot be joined, so a plain
/// `panic!` would leave the test binary hanging anyway.
fn two_thread_storm(at: &Atomic<Backend>, backend: &str, cm_label: &str) {
    let counter = TVar::new(0u64);
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let at = &at;
            let counter = &counter;
            let done = done_tx.clone();
            scope.spawn(move || {
                for _ in 0..INCREMENTS_PER_THREAD {
                    at.run(Policy::Regular, |tx| {
                        tx.modify(counter, |v| v + 1).map(|_| ())
                    });
                }
                let _ = done.send(());
            });
        }
        drop(done_tx);
        for _ in 0..2 {
            if done_rx.recv_timeout(CELL_BOUND).is_err() {
                eprintln!(
                    "LIVELOCK: {backend}+{cm_label} did not finish \
                     {INCREMENTS_PER_THREAD} increments x 2 threads within {CELL_BOUND:?}"
                );
                std::process::exit(101);
            }
        }
    });
    let total = at.run(Policy::Regular, |tx| tx.get(&counter));
    assert_eq!(
        total,
        2 * INCREMENTS_PER_THREAD,
        "{backend}+{cm_label}: increments lost under contention"
    );
}

#[test]
fn every_backend_and_cm_completes_a_two_thread_hot_conflict_storm() {
    for cm in CmPolicy::ALL {
        for backend in BACKENDS {
            let at = runner(backend, StmConfig::default().with_cm(cm));
            two_thread_storm(&at, backend, cm.name());
        }
    }
}

#[test]
fn storm_completes_even_with_a_hair_trigger_backstop() {
    // Threshold 0 parks on every single loss: the pathological "sleep all
    // the time" configuration must still be correct (and, on this
    // workload, still fast enough for the bound).
    for backend in BACKENDS {
        let at = runner(backend, StmConfig::default().with_progress_park_after(0));
        two_thread_storm(&at, backend, "park-after-0");
    }
}

#[test]
fn backstop_parks_every_loss_past_a_zero_threshold() {
    // Deterministic accounting: sabotage K attempts via the out-of-band
    // versioned store (the fig1 hook trick), with the park threshold at
    // zero. Every conflict loss must park exactly once, so
    // `progress_parks == aborts` — and the run still commits.
    const SABOTAGED: u64 = 4;
    for backend in BACKENDS {
        if backend == "boost" {
            // Boost serializes through per-word 2PL locks and never
            // validates against the clock, so the versioned-store
            // sabotage cannot force a conflict there.
            continue;
        }
        let at = runner(backend, StmConfig::default().with_progress_park_after(0));
        let a = TVar::new(0u64);
        let mut sabotage_left = SABOTAGED;
        at.run(Policy::Regular, |tx| {
            let ra = tx.get(&a)?;
            if sabotage_left > 0 {
                sabotage_left -= 1;
                let nv = at.clock().tick();
                a.store_atomic(ra + 100, nv);
            }
            tx.set(&a, ra + 1)
        });
        let snap = at.stats();
        assert_eq!(snap.commits, 1, "{backend}");
        assert_eq!(snap.aborts(), SABOTAGED, "{backend}: {snap:?}");
        assert_eq!(
            snap.progress_parks, SABOTAGED,
            "{backend}: at threshold 0 every loss must park exactly once"
        );
    }
}

#[test]
fn backstop_stays_out_of_runs_below_the_default_threshold() {
    // The default threshold (64 consecutive losses) must keep ordinary
    // conflict recovery park-free: a few sabotaged attempts spin or
    // yield per the CM policy, but never sleep.
    const SABOTAGED: u64 = 4;
    for backend in BACKENDS {
        if backend == "boost" {
            continue;
        }
        let at = runner(backend, StmConfig::default());
        let a = TVar::new(0u64);
        let mut sabotage_left = SABOTAGED;
        at.run(Policy::Regular, |tx| {
            let ra = tx.get(&a)?;
            if sabotage_left > 0 {
                sabotage_left -= 1;
                let nv = at.clock().tick();
                a.store_atomic(ra + 100, nv);
            }
            tx.set(&a, ra + 1)
        });
        let snap = at.stats();
        assert_eq!(snap.aborts(), SABOTAGED, "{backend}");
        assert_eq!(
            snap.progress_parks, 0,
            "{backend}: short conflicts must never reach the backstop"
        );
    }
}

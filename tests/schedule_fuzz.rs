//! Schedule fuzzer: randomized multi-thread op-trees replayed across
//! every `backend × contention-policy` cell with a [`Recorder`] attached,
//! holding each recorded execution to the formal checkers of the
//! `histories` crate.
//!
//! Two schedule families:
//!
//! * **Regular** — every transaction (and child) runs `TxKind::Regular`.
//!   The raw recorded history (aborted attempts included) must satisfy
//!   [`check_opacity`]: committed transactions serialize under real-time
//!   order and no aborted attempt observed an inconsistent (zombie)
//!   snapshot. The committed projection must additionally be well-formed
//!   and relax-serializable (opacity implies it; the checkers must agree).
//! * **Elastic** — transactions run `TxKind::Elastic`. Elastic cuts may
//!   legitimately break opacity's single-snapshot reads, so the criterion
//!   is the paper's: well-formedness + relax-serializability, plus
//!   outheritance (Definition 4.1) for every multi-transaction process —
//!   except on `oe-estm-compat`, whose E-STM compatibility mode releases
//!   child protected sets by design (the Fig. 1 pitfall) and is therefore
//!   exempt from the outheritance clause only.
//!
//! Case count is kept small here (CI smoke); the deflake job reruns the
//! suite with rotating `PROPTEST_SHIM_SEED` values for depth.

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::histories::{
    check_opacity, is_relax_serializable, satisfies_outheritance, Composition, History, Recorder,
    TxId,
};
use composing_relaxed_transactions::stm_core::{
    Abort, CmPolicy, StmConfig, TVar, Transaction, Tx, TxKind,
};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};

/// Shared transactional variables per schedule (registers starting at 0,
/// matching the register specification's initial state).
const N_VARS: usize = 3;

/// One leaf operation of a plan.
#[derive(Debug, Clone, Copy)]
struct SimpleOp {
    write: bool,
    var: usize,
    val: u64,
}

/// One thread's transaction. The tracer's flat model maps an attempt onto
/// *sequential* model transactions, so a plan is either a leaf (direct
/// ops, no children) or a pure composition shell (children only — the
/// invisible top would otherwise overlap its own children's begins).
/// Sizes are kept small so the exhaustive relax-serializability search
/// stays tractable.
#[derive(Debug, Clone)]
enum Plan {
    Leaf(Vec<SimpleOp>),
    Shell(Vec<Vec<SimpleOp>>),
}

fn simple_op() -> impl Strategy<Value = SimpleOp> {
    (any::<bool>(), 0..N_VARS, 1u64..8).prop_map(|(write, var, val)| SimpleOp { write, var, val })
}

fn plan() -> impl Strategy<Value = Plan> {
    prop_oneof![
        prop::collection::vec(simple_op(), 1..5).prop_map(Plan::Leaf),
        prop::collection::vec(prop::collection::vec(simple_op(), 1..4), 1..3).prop_map(Plan::Shell),
    ]
}

/// A whole schedule: one plan per thread.
fn schedule() -> impl Strategy<Value = Vec<Plan>> {
    prop::collection::vec(plan(), 2..4)
}

fn apply<'env>(
    tx: &mut Tx<'env, '_>,
    vars: &'env [TVar<u64>],
    ops: &[SimpleOp],
) -> Result<(), Abort> {
    for op in ops {
        if op.write {
            tx.set(&vars[op.var], op.val)?;
        } else {
            tx.get(&vars[op.var])?;
        }
    }
    Ok(())
}

/// Run `plans` concurrently (one thread each, released together) against
/// backend `name` built with `cm` and a fresh recorder; returns the raw
/// recorded history and its committed projection.
fn run_cell(name: &str, cm: CmPolicy, kind: TxKind, plans: &[Plan]) -> (History, History) {
    let rec = Arc::new(Recorder::new());
    let backend = backend_registry()
        .build(
            name,
            StmConfig::default()
                .with_cm(cm)
                .with_trace_sink(rec.clone()),
        )
        .expect("fuzzer cell names come from the registry");
    let vars: Vec<TVar<u64>> = (0..N_VARS).map(|_| TVar::new(0u64)).collect();
    let barrier = Barrier::new(plans.len());
    std::thread::scope(|s| {
        let (backend, vars, barrier) = (&backend, &vars, &barrier);
        for plan in plans {
            s.spawn(move || {
                barrier.wait();
                backend.run(kind, |tx| match plan {
                    Plan::Leaf(ops) => apply(tx, vars, ops),
                    Plan::Shell(children) => {
                        for body in children {
                            tx.child(kind, |tx| apply(tx, vars, body))?;
                        }
                        Ok(())
                    }
                });
            });
        }
    });
    (rec.raw_history(), rec.history())
}

/// Committed transactions of process `p` in commit order — the flat-model
/// composition the tracer recorded for that thread (children first, the
/// enclosing top level last, i.e. as `Sup`).
fn composition_of(h: &History, p: u32) -> Vec<TxId> {
    let committed = h.committed();
    let mut txs: Vec<TxId> = committed
        .iter()
        .copied()
        .filter(|&t| h.proc_of(t) == Some(p))
        .collect();
    txs.sort_by_key(|&t| h.commit_index(t).unwrap_or(usize::MAX));
    txs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Regular executions of every backend under every CM policy must be
    // opaque — including their aborted attempts — and the checkers must
    // agree that the committed projection is relax-serializable.
    #[test]
    fn regular_schedules_are_opaque_on_every_cell(plans in schedule()) {
        for name in backend_registry().names() {
            for cm in CmPolicy::ALL {
                let (raw, h) = run_cell(name, cm, TxKind::Regular, &plans);
                prop_assert_eq!(h.well_formed(), Ok(()), "{} under {:?}", name, cm);
                if let Err(v) = check_opacity(&raw) {
                    panic!("backend {name} under {cm:?} is not opaque: {v}\nraw history:\n{raw:#}");
                }
                prop_assert!(
                    is_relax_serializable(&h),
                    "{} under {:?}: opaque but not relax-serializable?\n{:#}",
                    name,
                    cm,
                    h
                );
            }
        }
    }

    // Elastic executions stay relax-serializable on every cell, and every
    // backend that promises outheritance keeps child protected sets
    // protected until the enclosing commit. `oe-estm-compat` is exempt
    // from the outheritance clause only: its E-STM mode releases child
    // protected sets by design (the paper's Fig. 1 pitfall).
    #[test]
    fn elastic_schedules_stay_relax_serializable_and_outherited(plans in schedule()) {
        for name in backend_registry().names() {
            for cm in CmPolicy::ALL {
                let (_raw, h) = run_cell(name, cm, TxKind::Elastic, &plans);
                prop_assert_eq!(h.well_formed(), Ok(()), "{} under {:?}", name, cm);
                prop_assert!(
                    is_relax_serializable(&h),
                    "{} under {:?}: not relax-serializable\n{:#}",
                    name,
                    cm,
                    h
                );
                if name == "oe-estm-compat" {
                    continue;
                }
                for p in h.processes() {
                    let members = composition_of(&h, p);
                    if members.len() < 2 {
                        continue;
                    }
                    let c = Composition::new(members);
                    prop_assert!(
                        satisfies_outheritance(&h, &c),
                        "{} under {:?}: proc {} composition {:?} lost a protected set\n{:#}",
                        name,
                        cm,
                        p,
                        c,
                        h
                    );
                }
            }
        }
    }
}

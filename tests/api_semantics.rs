//! Semantics of the `atomic` facade — `retry`, `or_else`, `section`,
//! `get`/`set`/`modify` — run through every registered backend
//! (mirroring `tests/dyn_semantics.rs` for the erasure layer underneath):
//! the facade must change ergonomics, never semantics, on any of the five
//! registry backends *or* on a statically typed backend.

use composing_relaxed_transactions::backend_registry;
use composing_relaxed_transactions::cec::{dequeue_or_else, LinkedListSet, SetExt, TxQueue, TxSet};
use composing_relaxed_transactions::oe_stm::OeStm;
use composing_relaxed_transactions::stm_core::api::{Atomic, AtomicBackend, Policy};
use composing_relaxed_transactions::stm_core::dynstm::Backend;
use composing_relaxed_transactions::stm_core::{RunError, StmConfig, TVar};
use composing_relaxed_transactions::stm_tl2::Tl2;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// All five registered backends, wrapped in the facade runner.
fn runners() -> Vec<Atomic<Backend>> {
    let reg = backend_registry();
    assert_eq!(reg.names().len(), 6, "expected all six backends wired");
    reg.build_all().into_iter().map(Atomic::new).collect()
}

/// The composition-sound runners (everything except the deliberately
/// broken E-STM compatibility mode).
fn sound_runners() -> Vec<Atomic<Backend>> {
    runners()
        .into_iter()
        .filter(|at| at.backend().key() != "oe-estm-compat")
        .collect()
}

fn key(at: &Atomic<Backend>) -> String {
    at.backend().key().to_string()
}

// ---------------------------------------------------------------------
// get / set / modify.
// ---------------------------------------------------------------------

#[test]
fn get_set_modify_roundtrip_every_backend() {
    for at in runners() {
        let v = TVar::new(40i64);
        let out = at.run(Policy::Regular, |tx| {
            let x = tx.get(&v)?;
            tx.set(&v, x + 1)?;
            tx.modify(&v, |x| x + 1)
        });
        assert_eq!(out, 42, "{}", key(&at));
        assert_eq!(v.load_atomic(), 42, "{}", key(&at));
        assert_eq!(at.stats().commits, 1, "{}", key(&at));
    }
}

#[test]
fn facade_over_static_backend_matches_registry_backend() {
    // The same closure, one runner over a static TL2 and one over the
    // registry's erased handle.
    fn double<B: AtomicBackend>(at: &Atomic<B>) -> i64 {
        let v = TVar::new(21i64);
        at.run(Policy::Regular, |tx| tx.modify(&v, |x| x * 2))
    }
    assert_eq!(double(&Atomic::new(Tl2::new())), 42);
    assert_eq!(
        double(&Atomic::new(
            backend_registry().build_default("tl2").unwrap()
        )),
        42
    );
}

// ---------------------------------------------------------------------
// retry: reruns, rollback, and the statistics category.
// ---------------------------------------------------------------------

#[test]
fn retry_reruns_and_counts_separately_every_backend() {
    for at in runners() {
        let v = TVar::new(0u64);
        let mut retried = false;
        at.run(Policy::Regular, |tx| {
            let cur = tx.get(&v)?;
            tx.set(&v, cur + 9)?;
            if !retried {
                retried = true;
                return tx.retry();
            }
            Ok(())
        });
        assert_eq!(v.load_atomic(), 9, "{}", key(&at));
        let snap = at.stats();
        assert_eq!(snap.commits, 1, "{}", key(&at));
        assert_eq!(snap.explicit_retries(), 1, "{}", key(&at));
        assert_eq!(
            snap.aborts(),
            0,
            "{}: a user-level retry must not count as a conflict abort",
            key(&at)
        );
        assert_eq!(snap.abort_rate(), 0.0, "{}", key(&at));
        assert_eq!(
            snap.retry_parks,
            1,
            "{}: a genuine retry parks on its read set",
            key(&at)
        );
        assert_eq!(
            snap.cm_waits(),
            0,
            "{}: a precondition wait is parked, never CM-paced",
            key(&at)
        );
    }
}

#[test]
fn empty_read_set_retry_would_block_forever_every_backend() {
    // A retry that read nothing can never be woken by a commit, so
    // instead of parking forever (or burning a retry budget) the run
    // ends with the distinct WouldBlockForever error on every backend.
    let reg = backend_registry();
    for name in reg.names() {
        let at = Atomic::new(
            reg.build(name, StmConfig::default().with_max_retries(2))
                .unwrap(),
        );
        let r: Result<(), _> = at.try_run(Policy::Regular, |tx| tx.retry());
        match r {
            Err(RunError::WouldBlockForever { attempts }) => {
                assert_eq!(attempts, 1, "{name}: ends on the first attempt");
            }
            other => panic!("{name}: expected WouldBlockForever, got {other:?}"),
        }
        let snap = at.stats();
        assert_eq!(snap.explicit_retries(), 1, "{name}: still filed as retry");
        assert_eq!(snap.retry_parks, 0, "{name}: must not park unwakeable");
    }
}

#[test]
fn waiting_retries_never_exhaust_a_bounded_budget_every_backend() {
    // The bugfix pin: a bounded budget counts conflict LOSSES, and a
    // precondition wait is not a loss. Retry (with a read set) more
    // times than max_retries allows, then succeed — must commit.
    let reg = backend_registry();
    for name in reg.names() {
        let at = Atomic::new(
            reg.build(name, StmConfig::default().with_max_retries(2))
                .unwrap(),
        );
        let v = TVar::new(0u64);
        let mut waits_left = 5;
        let r = at.try_run(Policy::Regular, |tx| {
            let x = tx.get(&v)?;
            if waits_left > 0 {
                waits_left -= 1;
                return tx.retry();
            }
            tx.set(&v, x + 1)
        });
        assert!(r.is_ok(), "{name}: waits charged against budget: {r:?}");
        assert_eq!(v.load_atomic(), 1, "{name}");
        let snap = at.stats();
        assert_eq!(snap.explicit_retries(), 5, "{name}");
        assert_eq!(snap.retry_parks, 5, "{name}");
    }
}

// ---------------------------------------------------------------------
// or_else: branch selection, alternation, atomicity of the winner.
// ---------------------------------------------------------------------

#[test]
fn or_else_falls_through_to_second_branch_every_backend() {
    for at in runners() {
        let gate = TVar::new(0u64);
        let out = at.or_else(
            Policy::Regular,
            |tx| {
                if tx.get(&gate)? == 0 {
                    return tx.retry();
                }
                Ok("primary")
            },
            |_tx| Ok("fallback"),
        );
        assert_eq!(out, "fallback", "{}", key(&at));
        assert_eq!(at.stats().explicit_retries(), 1, "{}", key(&at));
        assert_eq!(at.stats().commits, 1, "{}", key(&at));
    }
}

#[test]
fn or_else_never_runs_second_when_first_commits_every_backend() {
    for at in runners() {
        let mut second_ran = false;
        let out = at.or_else(
            Policy::Regular,
            |_tx| Ok(1),
            |_tx| {
                second_ran = true;
                Ok(2)
            },
        );
        assert_eq!(out, 1, "{}", key(&at));
        assert!(!second_ran, "{}: the alternative must not run", key(&at));
    }
}

#[test]
fn or_else_discards_retrying_branch_writes_every_backend() {
    for at in runners() {
        let v = TVar::new(0u64);
        let out = at.or_else(
            Policy::Regular,
            |tx| {
                tx.set(&v, 99)?; // must die with the retried attempt
                tx.retry()
            },
            |tx| tx.get(&v),
        );
        assert_eq!(
            out,
            0,
            "{}: the fallback must not observe the retried branch's writes",
            key(&at)
        );
        assert_eq!(v.load_atomic(), 0, "{}", key(&at));
    }
}

#[test]
fn or_else_unblocks_when_another_thread_opens_the_gate() {
    // The Haskell-STM shape: the primary branch waits (retries) on a
    // condition another thread eventually establishes.
    for at in sound_runners() {
        let k = key(&at);
        let at = Arc::new(at);
        let gate = Arc::new(TVar::new(0u64));
        let opener = {
            let at = Arc::clone(&at);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                at.run(Policy::Regular, |tx| tx.set(&gate, 1));
            })
        };
        let out = at.or_else(
            Policy::Regular,
            |tx| {
                if tx.get(&gate)? == 0 {
                    return tx.retry();
                }
                Ok("opened")
            },
            |tx| {
                // Alternative: check again and keep waiting.
                if tx.get(&gate)? == 0 {
                    return tx.retry();
                }
                Ok("opened-via-fallback")
            },
        );
        assert!(out.starts_with("opened"), "{k}");
        opener.join().unwrap();
    }
}

// ---------------------------------------------------------------------
// section: policy-driven composition through the facade.
// ---------------------------------------------------------------------

#[test]
fn sections_compose_atomically_every_sound_backend() {
    for at in sound_runners() {
        let k = key(&at);
        let set = LinkedListSet::new();
        assert!(set.add_all(&at, &[4, 2, 9]), "{k}");
        assert!(set.insert_if_absent(&at, 10, 99), "{k}");
        assert!(!set.insert_if_absent(&at, 20, 4), "{k}");
        assert!(set.remove_all(&at, &[2, 9]), "{k}");
        assert_eq!(set.size(&at), 2, "{k}");
        assert!(
            at.stats().child_commits >= 5,
            "{k}: sections must run as child transactions"
        );
    }
}

#[test]
fn mixed_policy_sections_every_sound_backend() {
    for at in sound_runners() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        let sum = at.run(Policy::Elastic, |tx| {
            let x = tx.section(Policy::Elastic, |t| t.get(&a))?;
            let y = tx.section(Policy::Regular, |t| t.get(&b))?;
            tx.section(Policy::Regular, |t| t.set(&b, x + y))?;
            Ok(x + y)
        });
        assert_eq!(sum, 3, "{}", key(&at));
        assert_eq!(b.load_atomic(), 3, "{}", key(&at));
        assert_eq!(at.stats().child_commits, 3, "{}", key(&at));
    }
}

#[test]
fn torn_pair_never_observed_through_facade_sections() {
    // The composed_pairs invariant, stated over the facade for the
    // registry-built OE backend: an or_else-free sanity pass that
    // sections see bulk updates atomically under concurrency.
    let at = Arc::new(Atomic::new(backend_registry().build_default("oe").unwrap()));
    let set = Arc::new(LinkedListSet::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (at, set, stop) = (Arc::clone(&at), Arc::clone(&set), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut inserting = true;
            while !stop.load(Ordering::Relaxed) {
                if inserting {
                    set.add_all(&*at, &[7, 8]);
                } else {
                    set.remove_all(&*at, &[7, 8]);
                }
                inserting = !inserting;
            }
        })
    };
    for _ in 0..300 {
        let (a, b) = at.run(Policy::Regular, |tx| {
            let a = tx.section(Policy::Regular, |t| set.contains_in(t, 7))?;
            let b = tx.section(Policy::Regular, |t| set.contains_in(t, 8))?;
            Ok((a, b))
        });
        assert_eq!(a, b, "torn pair through facade sections");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

// ---------------------------------------------------------------------
// or_else over collections: the queue work-stealing idiom.
// ---------------------------------------------------------------------

#[test]
fn queue_or_else_drains_primary_then_fallback_every_backend() {
    for at in runners() {
        let k = key(&at);
        let primary = TxQueue::new();
        let fallback = TxQueue::new();
        primary.enqueue(&at, 1);
        fallback.enqueue(&at, 100);
        fallback.enqueue(&at, 101);
        assert_eq!(dequeue_or_else(&at, &primary, &fallback), Some(1), "{k}");
        assert_eq!(dequeue_or_else(&at, &primary, &fallback), Some(100), "{k}");
        assert_eq!(dequeue_or_else(&at, &primary, &fallback), Some(101), "{k}");
        assert_eq!(dequeue_or_else(&at, &primary, &fallback), None, "{k}");
        assert!(
            at.stats().explicit_retries() >= 3,
            "{k}: empty-primary drains must retry into the fallback"
        );
    }
}

// ---------------------------------------------------------------------
// Static-backend facade under concurrency (conservation).
// ---------------------------------------------------------------------

#[test]
fn conservation_through_facade_static_backend() {
    const ACCOUNTS: usize = 8;
    const TOTAL: i64 = 800;
    let at = Arc::new(Atomic::new(OeStm::new()));
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| TVar::new(TOTAL / ACCOUNTS as i64))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mover = {
        let (at, accounts, stop) = (Arc::clone(&at), Arc::clone(&accounts), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut s = 0x9E37_79B9u64;
            while !stop.load(Ordering::Relaxed) {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let from = (s % ACCOUNTS as u64) as usize;
                let to = ((s >> 8) % ACCOUNTS as u64) as usize;
                if from == to {
                    continue;
                }
                at.run(Policy::Regular, |tx| {
                    let a = tx.get(&accounts[from])?;
                    if a > 0 {
                        tx.set(&accounts[from], a - 1)?;
                        tx.modify(&accounts[to], |c| c + 1)?;
                    }
                    Ok(())
                });
            }
        })
    };
    for _ in 0..100 {
        let sum = at.run(Policy::Regular, |tx| {
            let mut sum = 0i64;
            for a in accounts.iter() {
                sum += tx.get(a)?;
            }
            Ok(sum)
        });
        assert_eq!(sum, TOTAL, "money created or destroyed through facade");
    }
    stop.store(true, Ordering::Relaxed);
    mover.join().unwrap();
}
